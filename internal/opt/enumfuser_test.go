package opt_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"nautilus/internal/graph"
	"nautilus/internal/layers"
	"nautilus/internal/opt"
	"nautilus/internal/profile"
	"nautilus/internal/verify"
)

var enumTestHW = profile.Hardware{
	FLOPSThroughput: 6e12,
	DiskThroughput:  6e10,
	WorkspaceBytes:  1 << 28,
}

// TestEnumFuserBeatsGreedyOnTrapFixture pins the reason EnumFuser exists:
// on the trap workload, greedy's best-pair-first choice is provably
// suboptimal and enumeration finds the cheaper partition — while both
// plans stay legal under the verifier.
func TestEnumFuserBeatsGreedyOnTrapFixture(t *testing.T) {
	items, budget, err := opt.GreedyTrapWorkload()
	if err != nil {
		t.Fatal(err)
	}
	cfg := func(stats *opt.FuseStats) opt.FuseConfig {
		return opt.FuseConfig{MemBudgetBytes: budget, OptimizerSlotBytes: 2, Stats: stats}
	}

	greedyStats := &opt.FuseStats{}
	greedy, err := opt.GreedyFuser{}.Fuse(items, nil, cfg(greedyStats))
	if err != nil {
		t.Fatal(err)
	}
	enumStats := &opt.FuseStats{}
	fuser, err := opt.NewFuser(opt.FuserEnum, 0)
	if err != nil {
		t.Fatal(err)
	}
	enum, err := fuser.Fuse(items, nil, cfg(enumStats))
	if err != nil {
		t.Fatal(err)
	}

	gCost, eCost := opt.TotalPlanCost(greedy), opt.TotalPlanCost(enum)
	if eCost >= gCost {
		t.Errorf("enum cost %d not strictly below greedy %d on the trap fixture", eCost, gCost)
	}
	// The designed optimum is {A,C} + {B,D}: two pairs, no singletons.
	if len(enum) != 2 {
		t.Errorf("enum produced %d groups, want the 2-pair optimum", len(enum))
	}
	for _, g := range enum {
		if len(g.Items) != 2 {
			t.Errorf("enum group %q has %d members, want 2", g.Name(), len(g.Items))
		}
		if g.PeakMemBytes > budget {
			t.Errorf("enum group %q exceeds B_mem: %d > %d", g.Name(), g.PeakMemBytes, budget)
		}
	}
	if err := verify.Groups(greedy, items, budget, nil); err != nil {
		t.Errorf("greedy plan fails verify: %v", err)
	}
	if err := verify.Groups(enum, items, budget, nil); err != nil {
		t.Errorf("enum plan fails verify: %v", err)
	}
	if enumStats.Strategy != opt.FuserEnum || greedyStats.Strategy != opt.FuserGreedy {
		t.Errorf("stats strategies %q/%q, want enum/greedy", enumStats.Strategy, greedyStats.Strategy)
	}
	if enumStats.StatesExplored == 0 || enumStats.PairsEvaluated == 0 {
		t.Errorf("enum search counters empty: %+v", enumStats)
	}
	if enumStats.Fallbacks != 0 {
		t.Errorf("enum fell back %d times on a 4-model bucket; budget %d should suffice", enumStats.Fallbacks, opt.DefaultFuseStateBudget)
	}
}

// TestEnumFuserFallsBackToGreedyOnTinyBudget checks graceful degradation:
// with a state budget too small for the bucket, EnumFuser must report the
// fallback and reproduce the greedy partition exactly.
func TestEnumFuserFallsBackToGreedyOnTinyBudget(t *testing.T) {
	items, budget, err := opt.GreedyTrapWorkload()
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := opt.FuseModels(items, nil, opt.FuseConfig{MemBudgetBytes: budget, OptimizerSlotBytes: 2})
	if err != nil {
		t.Fatal(err)
	}
	stats := &opt.FuseStats{}
	fuser, err := opt.NewFuser(opt.FuserEnum, 1)
	if err != nil {
		t.Fatal(err)
	}
	fell, err := fuser.Fuse(items, nil, opt.FuseConfig{MemBudgetBytes: budget, OptimizerSlotBytes: 2, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fallbacks == 0 {
		t.Error("state budget 1 must trigger a greedy fallback")
	}
	if len(fell) != len(greedy) {
		t.Fatalf("fallback produced %d groups, greedy %d", len(fell), len(greedy))
	}
	for i := range fell {
		if fell[i].Fingerprint() != greedy[i].Fingerprint() {
			t.Errorf("fallback group %d (%q) differs from greedy (%q)", i, fell[i].Name(), greedy[i].Name())
		}
	}
}

// TestNewFuserRejectsUnknownName pins the factory's error contract used by
// core.Config validation and the CLI flags.
func TestNewFuserRejectsUnknownName(t *testing.T) {
	for _, name := range []string{"", opt.FuserGreedy} {
		f, err := opt.NewFuser(name, 0)
		if err != nil || f.Name() != opt.FuserGreedy {
			t.Errorf("NewFuser(%q) = %v, %v; want greedy", name, f, err)
		}
	}
	if f, err := opt.NewFuser(opt.FuserEnum, 7); err != nil || f.Name() != opt.FuserEnum {
		t.Errorf("NewFuser(enum) = %v, %v", f, err)
	}
	if _, err := opt.NewFuser("steepest-descent", 0); err == nil {
		t.Error("NewFuser must reject unknown strategy names")
	}
}

// randomFusionWorkload builds a small random workload mixing shared and
// private trunks, batch sizes, and epoch counts.
func randomFusionWorkload(rng *rand.Rand) []opt.WorkItem {
	shared := []*layers.Dense{
		layers.NewDense(12, 24, layers.ActTanh, 41),
		layers.NewDense(12, 16, layers.ActTanh, 42),
		layers.NewDense(12, 20, layers.ActTanh, 43),
	}
	n := 2 + rng.Intn(4)
	items := make([]opt.WorkItem, 0, n)
	for i := 0; i < n; i++ {
		m := graph.NewModel(fmt.Sprintf("rnd%d", i))
		in := m.AddInput("in", 12)
		var parts []*graph.Node
		width := 0
		for j, tr := range shared {
			if rng.Intn(2) == 1 {
				parts = append(parts, m.AddNode(fmt.Sprintf("s%d", j), tr, in))
				width += tr.Out
			}
		}
		parts = append(parts, m.AddNode("own", layers.NewDense(12, 10, layers.ActTanh, rng.Int63()), in))
		width += 10
		trunk := parts[0]
		if len(parts) > 1 {
			trunk = m.AddNode("cat", layers.NewConcat(len(parts)), parts...)
		}
		h := m.AddNode("h", layers.NewDense(width, 2, layers.ActNone, rng.Int63()), trunk)
		h.Trainable = true
		m.SetOutputs(h)
		prof, err := profile.Profile(m, enumTestHW)
		if err != nil {
			panic(err)
		}
		items = append(items, opt.WorkItem{
			Model: m, Prof: prof,
			Epochs:    1 + rng.Intn(2),
			BatchSize: []int{8, 16}[rng.Intn(2)],
			LR:        1e-3,
		})
	}
	return items
}

// TestEnumFuserPropertyNeverWorseThanGreedy: on random workloads, the
// enumerated partition never costs more than greedy's, respects B_mem,
// covers every item exactly once, and both strategies' plans pass the
// verifier with deterministic group fingerprints.
func TestEnumFuserPropertyNeverWorseThanGreedy(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		items := randomFusionWorkload(rng)
		budget := int64(1 << (27 + rng.Intn(14)))
		mk := func(name string, stats *opt.FuseStats) []*opt.FusedGroup {
			f, err := opt.NewFuser(name, 0)
			if err != nil {
				t.Log(err)
				return nil
			}
			gs, err := f.Fuse(items, nil, opt.FuseConfig{MemBudgetBytes: budget, OptimizerSlotBytes: 2, Stats: stats})
			if err != nil {
				t.Log(err)
				return nil
			}
			return gs
		}
		greedy := mk(opt.FuserGreedy, &opt.FuseStats{})
		enumStats := &opt.FuseStats{}
		enum := mk(opt.FuserEnum, enumStats)
		if greedy == nil || enum == nil {
			return false
		}
		if opt.TotalPlanCost(enum) > opt.TotalPlanCost(greedy) {
			t.Logf("seed %d: enum %d > greedy %d", seed, opt.TotalPlanCost(enum), opt.TotalPlanCost(greedy))
			return false
		}
		for _, gs := range [][]*opt.FusedGroup{greedy, enum} {
			covered := 0
			for _, g := range gs {
				covered += len(g.Items)
				if len(g.Items) > 1 && g.PeakMemBytes > budget {
					return false
				}
				if g.Fingerprint() == "" {
					return false
				}
			}
			if covered != len(items) {
				return false
			}
			if err := verify.Groups(gs, items, budget, nil); err != nil {
				t.Logf("seed %d: verify: %v", seed, err)
				return false
			}
		}
		// Re-running enumeration must reproduce the same plan (memo and
		// bucket order are deterministic).
		again := mk(opt.FuserEnum, &opt.FuseStats{})
		if len(again) != len(enum) {
			return false
		}
		for i := range enum {
			if enum[i].Fingerprint() != again[i].Fingerprint() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestEnumFuserRespectsBucketBoundaries checks mixed batch sizes and
// epochs never fuse across compatibility classes.
func TestEnumFuserRespectsBucketBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := randomFusionWorkload(rng)
	// Force at least two compatibility classes.
	items[0].BatchSize, items[1].BatchSize = 8, 16
	fuser, err := opt.NewFuser(opt.FuserEnum, 0)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := fuser.Fuse(items, nil, opt.FuseConfig{MemBudgetBytes: 1 << 40, OptimizerSlotBytes: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range groups {
		for _, it := range g.Items {
			if it.BatchSize != g.BatchSize() || it.Epochs != g.Epochs() {
				t.Errorf("group %q mixes compatibility classes", g.Name())
			}
		}
	}
	if err := verify.Groups(groups, items, 1<<40, nil); err != nil {
		t.Errorf("verify: %v", err)
	}
}
