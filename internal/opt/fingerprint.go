package opt

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Fingerprint returns a stable hash of everything group verification
// depends on: member model names, batch size, epoch count, the reuse plan's
// per-node actions, its reported cost, the peak-memory estimate, and the
// signatures the plan loads. Two groups with equal fingerprints are
// verification-equivalent (up to membership of the loaded signatures in V,
// which the caller must check against the current materialized set) — the
// planner session uses this to skip re-verifying groups that an evolution
// event left untouched.
func (g *FusedGroup) Fingerprint() string {
	h := fnv.New64a()
	names := make([]string, len(g.Items))
	for i, it := range g.Items {
		names[i] = fmt.Sprintf("%s|b%d|e%d", it.Model.Name, it.BatchSize, it.Epochs)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintln(h, n)
	}
	if g.Plan != nil {
		acts := make([]string, 0, len(g.Plan.Actions))
		for n, a := range g.Plan.Actions {
			acts = append(acts, n.Name+"="+a.String())
		}
		sort.Strings(acts)
		for _, a := range acts {
			fmt.Fprintln(h, a)
		}
		fmt.Fprintf(h, "cost=%d\n", g.Plan.CostPerRecord)
		for _, n := range g.Plan.LoadedNodes() {
			fmt.Fprintf(h, "load=%s\n", g.Plan.Prof.Sigs[n])
		}
	}
	fmt.Fprintf(h, "mem=%d\n", g.PeakMemBytes)
	return fmt.Sprintf("%016x", h.Sum64())
}
