package opt

import (
	"fmt"
	"sort"

	"nautilus/internal/graph"
	"nautilus/internal/mmg"
	"nautilus/internal/profile"
)

// Fusion strategy names accepted by NewFuser (and core.Config.Fuser).
const (
	// FuserGreedy is the paper's Algorithm 1: greedy best-pair merging.
	FuserGreedy = "greedy"
	// FuserEnum is the cost-based partition enumeration (SystemML-style):
	// a memoized DP over subset partitions per compatibility bucket.
	FuserEnum = "enum"
)

// Fuser is a model-fusion strategy (FUSE OPT, Section 4.3): it partitions
// the workload into fused groups, each with a profiled merged graph, an
// optimal reuse plan given V, and a peak-memory estimate. Every strategy
// must emit a partition of the input items (each item in exactly one
// group) whose multi-model groups respect cfg.MemBudgetBytes; the
// strategies differ only in which partition they pick.
type Fuser interface {
	// Name identifies the strategy in stats, traces, and CLI flags.
	Name() string
	// Fuse partitions the work items into fused groups given the
	// materialized set V (by expression signature).
	Fuse(items []WorkItem, matSigs map[graph.Signature]bool, cfg FuseConfig) ([]*FusedGroup, error)
}

// NewFuser resolves a strategy name ("" means greedy). stateBudget only
// affects the enum strategy (0 means DefaultFuseStateBudget).
func NewFuser(name string, stateBudget int) (Fuser, error) {
	switch name {
	case "", FuserGreedy:
		return GreedyFuser{}, nil
	case FuserEnum:
		return &EnumFuser{StateBudget: stateBudget}, nil
	default:
		return nil, fmt.Errorf("opt: unknown fuser %q (want %q or %q)", name, FuserGreedy, FuserEnum)
	}
}

// FuseConfig configures the model fusion optimization.
type FuseConfig struct {
	// MemBudgetBytes is B_mem, the runtime memory budget a fused model's
	// estimated peak must not exceed.
	MemBudgetBytes int64
	// OptimizerSlotBytes is the optimizer state overhead per trainable
	// parameter byte (2 for Adam).
	OptimizerSlotBytes int64
	// Stats, when set, receives the strategy's search counters.
	Stats *FuseStats
}

// FuseStats counts the work of one Fuse run. The greedy strategy fills
// the Algorithm 1 counters; the enum strategy additionally fills the
// partition-search counters.
type FuseStats struct {
	// Strategy is the Fuser.Name() that produced these stats.
	Strategy string
	// Rounds is the number of greedy iterations that merged a pair.
	Rounds int
	// PairsEvaluated counts fused candidate groups actually built
	// (profile + reuse-plan solve + memory estimate): greedy pairs and
	// enumerated subset candidates alike. Cached groups don't recount.
	PairsEvaluated int
	// PairsRejected counts greedy pairs dismissed for non-positive gain
	// or a B_mem violation.
	PairsRejected int
	// StatesExplored counts partition-DP subproblems solved by the enum
	// strategy (memoized states are not recounted).
	StatesExplored int
	// MemoHits counts candidate-group lookups answered by the subset-
	// fingerprint memo instead of a fresh profile + solve.
	MemoHits int
	// BoundPrunings counts candidate sub-partitions skipped because a
	// lower bound already met or exceeded the best known completion.
	BoundPrunings int
	// Fallbacks counts compatibility buckets the enum strategy degraded
	// to greedy because the state budget was (or would be) exhausted.
	Fallbacks int
}

// FusedGroup is one entry of the optimized training plan: one or more
// source models fused into a single multi-branch model with a shared reuse
// plan. Each source model keeps its own loss/optimizer branch.
type FusedGroup struct {
	// Items are the source (M_i, ϕ_i) pairs fused into this group.
	Items []WorkItem
	// MM is the merged graph of the group's models. It is always set: a
	// single-model group wraps its model in a one-model merge.
	MM *mmg.MultiModel
	// Plan is the optimal reuse plan over the merged graph given V.
	Plan *Plan
	// PeakMemBytes is the analytical memory estimate at the group's batch
	// size.
	PeakMemBytes int64
}

// BatchSize returns the group's (shared) training batch size.
func (g *FusedGroup) BatchSize() int { return g.Items[0].BatchSize }

// Epochs returns the group's (shared) epoch count.
func (g *FusedGroup) Epochs() int { return g.Items[0].Epochs }

// CostPerRecord returns the group's per-record training cost.
func (g *FusedGroup) CostPerRecord() int64 { return g.Plan.CostPerRecord }

// Name identifies the group in traces and conformance reports: the first
// member's model name, plus the count of further fused members.
func (g *FusedGroup) Name() string {
	if len(g.Items) == 1 {
		return g.Items[0].Model.Name
	}
	return fmt.Sprintf("%s+%d", g.Items[0].Model.Name, len(g.Items)-1)
}

// FuseModels implements Algorithm 1 (FuseModels): greedy pairwise fusion.
// It is the GreedyFuser strategy kept as a plain function for callers that
// don't select a strategy.
func FuseModels(items []WorkItem, matSigs map[graph.Signature]bool, cfg FuseConfig) ([]*FusedGroup, error) {
	return GreedyFuser{}.Fuse(items, matSigs, cfg)
}

// GreedyFuser is the paper's Algorithm 1. Starting from each model's
// optimal reuse plan given the materialized set V, it repeatedly fuses the
// pair of groups with the highest cost reduction whose fused peak memory
// fits B_mem, until no beneficial fusible pair remains. Only groups with
// equal batch size and equal epoch count fuse: batch size because fused
// branches train on the same mini-batches (the paper's condition), epochs
// because the fused model runs one training loop.
type GreedyFuser struct{}

// Name implements Fuser.
func (GreedyFuser) Name() string { return FuserGreedy }

// Fuse implements Fuser.
func (GreedyFuser) Fuse(items []WorkItem, matSigs map[graph.Signature]bool, cfg FuseConfig) ([]*FusedGroup, error) {
	if cfg.Stats != nil {
		cfg.Stats.Strategy = FuserGreedy
	}
	var groups []*FusedGroup
	for _, it := range items {
		g, err := buildItemsGroup([]WorkItem{it}, matSigs, cfg)
		if err != nil {
			return nil, err
		}
		groups = append(groups, g)
	}
	groups, err := fuseGreedy(groups, matSigs, cfg)
	if err != nil {
		return nil, err
	}
	sortGroups(groups)
	return groups, nil
}

// fuseGreedy runs the greedy merge loop over pre-built singleton (or
// partially fused) groups. The result is unsorted; callers sort once at
// the end.
func fuseGreedy(groups []*FusedGroup, matSigs map[graph.Signature]bool, cfg FuseConfig) ([]*FusedGroup, error) {
	type pairKey struct{ a, b *FusedGroup }
	rejected := map[pairKey]bool{}
	// Groups are immutable once built, so a pair's fused candidate can be
	// evaluated once and reused across greedy rounds.
	fusedCache := map[pairKey]*FusedGroup{}

	for {
		// Evaluate all not-yet-rejected fusible pairs.
		var bestI, bestJ int
		var bestGroup *FusedGroup
		var bestGain int64
		for i := 0; i < len(groups); i++ {
			for j := i + 1; j < len(groups); j++ {
				gi, gj := groups[i], groups[j]
				if gi.BatchSize() != gj.BatchSize() || gi.Epochs() != gj.Epochs() {
					continue
				}
				key := pairKey{gi, gj}
				if rejected[key] {
					continue
				}
				fused := fusedCache[key]
				if fused == nil {
					var err error
					fused, err = fusePair(gi, gj, matSigs, cfg)
					if err != nil {
						return nil, err
					}
					fusedCache[key] = fused
					if cfg.Stats != nil {
						cfg.Stats.PairsEvaluated++
					}
				}
				gain := perEpochCost(gi) + perEpochCost(gj) - perEpochCost(fused)
				if gain <= 0 || fused.PeakMemBytes > cfg.MemBudgetBytes {
					rejected[key] = true
					if cfg.Stats != nil {
						cfg.Stats.PairsRejected++
					}
					continue
				}
				if gain > bestGain {
					bestGain = gain
					bestI, bestJ, bestGroup = i, j, fused
				}
			}
		}
		if bestGroup == nil {
			break
		}
		if cfg.Stats != nil {
			cfg.Stats.Rounds++
		}
		// Replace the pair with the fused group, and drop cache entries
		// that reference the merged-away groups: no future pair can name
		// them again, and keeping them would retain their profiled graphs
		// (O(n²) dead *FusedGroup pointers over a full run).
		merged := map[*FusedGroup]bool{groups[bestI]: true, groups[bestJ]: true}
		for key := range rejected {
			if merged[key.a] || merged[key.b] {
				delete(rejected, key)
			}
		}
		for key := range fusedCache {
			if merged[key.a] || merged[key.b] {
				delete(fusedCache, key)
			}
		}
		next := groups[:0:0]
		for k, g := range groups {
			if k != bestI && k != bestJ {
				next = append(next, g)
			}
		}
		groups = append(next, bestGroup)
	}
	return groups, nil
}

// sortGroups orders a training plan deterministically by each group's
// first member name.
func sortGroups(groups []*FusedGroup) {
	sort.Slice(groups, func(i, j int) bool {
		return groups[i].Items[0].Model.Name < groups[j].Items[0].Model.Name
	})
}

// perEpochCost is the group's per-record-per-epoch cost × epochs — the
// quantity the fusion strategies minimize the sum of.
func perEpochCost(g *FusedGroup) int64 {
	return g.Plan.CostPerRecord * int64(g.Epochs())
}

// fusePair builds the fused group for two groups' combined models.
func fusePair(a, b *FusedGroup, matSigs map[graph.Signature]bool, cfg FuseConfig) (*FusedGroup, error) {
	items := append(append([]WorkItem(nil), a.Items...), b.Items...)
	return buildItemsGroup(items, matSigs, cfg)
}

// buildItemsGroup merges the items' models into one graph and builds the
// candidate group (a singleton group when len(items) == 1).
func buildItemsGroup(items []WorkItem, matSigs map[graph.Signature]bool, cfg FuseConfig) (*FusedGroup, error) {
	ms := make([]*graph.Model, len(items))
	for i, it := range items {
		ms[i] = it.Model
	}
	mm, err := mmg.Build(ms...)
	if err != nil {
		return nil, err
	}
	return buildGroup(items, mm, matSigs, cfg)
}

// buildGroup profiles a merged graph, solves its reuse plan given V
// (Section 4.3.2: the MILP with Z fixed, solved via min-cut), and estimates
// its peak memory.
func buildGroup(items []WorkItem, mm *mmg.MultiModel, matSigs map[graph.Signature]bool, cfg FuseConfig) (*FusedGroup, error) {
	prof, err := profile.Profile(mm.Graph, items[0].Prof.HW)
	if err != nil {
		return nil, fmt.Errorf("opt: profile fused graph: %w", err)
	}
	plan, err := SolveReusePlan(prof, matSigs)
	if err != nil {
		return nil, err
	}
	mem := EstimatePeakMemory(plan, items[0].BatchSize, cfg.OptimizerSlotBytes)
	return &FusedGroup{Items: items, MM: mm, Plan: plan, PeakMemBytes: mem.Total()}, nil
}

// TotalPlanCost returns Σ over groups of cost/record × epochs — the
// workload's planned cost per training record summed across every group's
// full epoch schedule (the quantity Equation 6 scales by r).
func TotalPlanCost(groups []*FusedGroup) int64 {
	var total int64
	for _, g := range groups {
		total += perEpochCost(g)
	}
	return total
}
