package opt

import (
	"fmt"
	"sort"

	"nautilus/internal/graph"
	"nautilus/internal/mmg"
	"nautilus/internal/profile"
)

// FuseConfig configures the model fusion optimization.
type FuseConfig struct {
	// MemBudgetBytes is B_mem, the runtime memory budget a fused model's
	// estimated peak must not exceed.
	MemBudgetBytes int64
	// OptimizerSlotBytes is the optimizer state overhead per trainable
	// parameter byte (2 for Adam).
	OptimizerSlotBytes int64
	// Stats, when set, receives Algorithm 1 search counters.
	Stats *FuseStats
}

// FuseStats counts the work of one FuseModels run (Algorithm 1).
type FuseStats struct {
	// Rounds is the number of greedy iterations that merged a pair.
	Rounds int
	// PairsEvaluated counts fused candidate groups actually built
	// (profile + reuse-plan solve + memory estimate); cached pairs don't
	// recount.
	PairsEvaluated int
	// PairsRejected counts pairs dismissed for non-positive gain or a
	// B_mem violation.
	PairsRejected int
}

// FusedGroup is one entry of the optimized training plan: one or more
// source models fused into a single multi-branch model with a shared reuse
// plan. Each source model keeps its own loss/optimizer branch.
type FusedGroup struct {
	// Items are the source (M_i, ϕ_i) pairs fused into this group.
	Items []WorkItem
	// MM is the merged graph of the group's models (nil for singletons? no:
	// always set, a single-model group wraps its model).
	MM *mmg.MultiModel
	// Plan is the optimal reuse plan over the merged graph given V.
	Plan *Plan
	// PeakMemBytes is the analytical memory estimate at the group's batch
	// size.
	PeakMemBytes int64
}

// BatchSize returns the group's (shared) training batch size.
func (g *FusedGroup) BatchSize() int { return g.Items[0].BatchSize }

// Epochs returns the group's (shared) epoch count.
func (g *FusedGroup) Epochs() int { return g.Items[0].Epochs }

// CostPerRecord returns the group's per-record training cost.
func (g *FusedGroup) CostPerRecord() int64 { return g.Plan.CostPerRecord }

// Name identifies the group in traces and conformance reports: the first
// member's model name, plus the count of further fused members.
func (g *FusedGroup) Name() string {
	if len(g.Items) == 1 {
		return g.Items[0].Model.Name
	}
	return fmt.Sprintf("%s+%d", g.Items[0].Model.Name, len(g.Items)-1)
}

// FuseModels implements Algorithm 1 (FuseModels): greedy pairwise fusion.
// Starting from each model's optimal reuse plan given the materialized set
// V, it repeatedly fuses the pair of groups with the highest cost reduction
// whose fused peak memory fits B_mem, until no beneficial fusible pair
// remains. Only groups with equal batch size and equal epoch count fuse:
// batch size because fused branches train on the same mini-batches (the
// paper's condition), epochs because the fused model runs one training
// loop.
func FuseModels(items []WorkItem, matSigs map[graph.Signature]bool, cfg FuseConfig) ([]*FusedGroup, error) {
	var groups []*FusedGroup
	for _, it := range items {
		g, err := singletonGroup(it, matSigs, cfg)
		if err != nil {
			return nil, err
		}
		groups = append(groups, g)
	}

	type pairKey struct{ a, b *FusedGroup }
	rejected := map[pairKey]bool{}
	// Groups are immutable once built, so a pair's fused candidate can be
	// evaluated once and reused across greedy rounds.
	fusedCache := map[pairKey]*FusedGroup{}

	for {
		// Evaluate all not-yet-rejected fusible pairs.
		var bestI, bestJ int
		var bestGroup *FusedGroup
		var bestGain int64
		for i := 0; i < len(groups); i++ {
			for j := i + 1; j < len(groups); j++ {
				gi, gj := groups[i], groups[j]
				if gi.BatchSize() != gj.BatchSize() || gi.Epochs() != gj.Epochs() {
					continue
				}
				key := pairKey{gi, gj}
				if rejected[key] {
					continue
				}
				fused := fusedCache[key]
				if fused == nil {
					var err error
					fused, err = fusePair(gi, gj, matSigs, cfg)
					if err != nil {
						return nil, err
					}
					fusedCache[key] = fused
					if cfg.Stats != nil {
						cfg.Stats.PairsEvaluated++
					}
				}
				gain := perEpochCost(gi) + perEpochCost(gj) - perEpochCost(fused)
				if gain <= 0 || fused.PeakMemBytes > cfg.MemBudgetBytes {
					rejected[key] = true
					if cfg.Stats != nil {
						cfg.Stats.PairsRejected++
					}
					continue
				}
				if gain > bestGain {
					bestGain = gain
					bestI, bestJ, bestGroup = i, j, fused
				}
			}
		}
		if bestGroup == nil {
			break
		}
		if cfg.Stats != nil {
			cfg.Stats.Rounds++
		}
		// Replace the pair with the fused group.
		next := groups[:0:0]
		for k, g := range groups {
			if k != bestI && k != bestJ {
				next = append(next, g)
			}
		}
		groups = append(next, bestGroup)
	}

	sort.Slice(groups, func(i, j int) bool {
		return groups[i].Items[0].Model.Name < groups[j].Items[0].Model.Name
	})
	return groups, nil
}

// perEpochCost is the group's per-record-per-epoch cost × epochs — the
// quantity Algorithm 1's gain compares.
func perEpochCost(g *FusedGroup) int64 {
	return g.Plan.CostPerRecord * int64(g.Epochs())
}

// singletonGroup wraps one work item as an unfused group.
func singletonGroup(it WorkItem, matSigs map[graph.Signature]bool, cfg FuseConfig) (*FusedGroup, error) {
	mm, err := mmg.Build(it.Model)
	if err != nil {
		return nil, err
	}
	return buildGroup([]WorkItem{it}, mm, matSigs, cfg)
}

// fusePair builds the fused group for two groups' combined models.
func fusePair(a, b *FusedGroup, matSigs map[graph.Signature]bool, cfg FuseConfig) (*FusedGroup, error) {
	items := append(append([]WorkItem(nil), a.Items...), b.Items...)
	ms := make([]*graph.Model, len(items))
	for i, it := range items {
		ms[i] = it.Model
	}
	mm, err := mmg.Build(ms...)
	if err != nil {
		return nil, err
	}
	return buildGroup(items, mm, matSigs, cfg)
}

// buildGroup profiles a merged graph, solves its reuse plan given V
// (Section 4.3.2: the MILP with Z fixed, solved via min-cut), and estimates
// its peak memory.
func buildGroup(items []WorkItem, mm *mmg.MultiModel, matSigs map[graph.Signature]bool, cfg FuseConfig) (*FusedGroup, error) {
	prof, err := profile.Profile(mm.Graph, items[0].Prof.HW)
	if err != nil {
		return nil, fmt.Errorf("opt: profile fused graph: %w", err)
	}
	plan, err := SolveReusePlan(prof, matSigs)
	if err != nil {
		return nil, err
	}
	mem := EstimatePeakMemory(plan, items[0].BatchSize, cfg.OptimizerSlotBytes)
	return &FusedGroup{Items: items, MM: mm, Plan: plan, PeakMemBytes: mem.Total()}, nil
}

// TotalPlanCost returns Σ over groups of cost/record × epochs — the
// per-record workload cost of an optimized training plan.
func TotalPlanCost(groups []*FusedGroup) int64 {
	var total int64
	for _, g := range groups {
		total += perEpochCost(g)
	}
	return total
}
