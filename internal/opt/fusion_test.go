package opt

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"nautilus/internal/graph"
	"nautilus/internal/layers"
	"nautilus/internal/mmg"
	"nautilus/internal/profile"
	"nautilus/internal/tensor"
)

func TestFuseModelsMergesSharedFrozenWork(t *testing.T) {
	items, mm := miniWorkload(t, 4)
	res, err := OptimizeMaterialization(mm, items, MatConfig{DiskBudgetBytes: 1 << 40, MaxRecords: 100})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := FuseModels(items, res.Sigs, FuseConfig{MemBudgetBytes: 1 << 40, OptimizerSlotBytes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) >= len(items) {
		t.Errorf("fusion produced %d groups from %d models; expected fewer", len(groups), len(items))
	}
	// Fused total cost must not exceed the unfused total.
	var unfused int64
	for _, it := range items {
		plan, err := SolveReusePlan(it.Prof, res.Sigs)
		if err != nil {
			t.Fatal(err)
		}
		unfused += plan.CostPerRecord * int64(it.Epochs)
	}
	if TotalPlanCost(groups) > unfused {
		t.Errorf("fused cost %d exceeds unfused %d", TotalPlanCost(groups), unfused)
	}
	// Every source model appears in exactly one group.
	seen := map[*graph.Model]int{}
	for _, g := range groups {
		for _, it := range g.Items {
			seen[it.Model]++
		}
	}
	for _, it := range items {
		if seen[it.Model] != 1 {
			t.Errorf("model %q in %d groups", it.Model.Name, seen[it.Model])
		}
	}
}

func TestFuseModelsRespectsBatchSizeBoundary(t *testing.T) {
	items, mm := miniWorkload(t, 4)
	// Two batch-size groups.
	items[0].BatchSize = 16
	items[1].BatchSize = 16
	items[2].BatchSize = 32
	items[3].BatchSize = 32
	res, err := OptimizeMaterialization(mm, items, MatConfig{DiskBudgetBytes: 1 << 40, MaxRecords: 100})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := FuseModels(items, res.Sigs, FuseConfig{MemBudgetBytes: 1 << 40, OptimizerSlotBytes: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range groups {
		bs := g.Items[0].BatchSize
		for _, it := range g.Items {
			if it.BatchSize != bs {
				t.Errorf("group mixes batch sizes %d and %d", bs, it.BatchSize)
			}
		}
	}
	if len(groups) < 2 {
		t.Error("batch-size boundary must prevent full fusion")
	}
}

func TestFuseModelsTightMemoryBudgetPreventsFusion(t *testing.T) {
	items, mm := miniWorkload(t, 3)
	res, err := OptimizeMaterialization(mm, items, MatConfig{DiskBudgetBytes: 1 << 40, MaxRecords: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Budget below even a single model's workspace: nothing fuses.
	groups, err := FuseModels(items, res.Sigs, FuseConfig{MemBudgetBytes: 1, OptimizerSlotBytes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != len(items) {
		t.Errorf("got %d groups with 1-byte budget, want %d singletons", len(groups), len(items))
	}
	// Generous budget: fewer groups.
	groups2, err := FuseModels(items, res.Sigs, FuseConfig{MemBudgetBytes: 1 << 40, OptimizerSlotBytes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups2) >= len(groups) {
		t.Error("raising the memory budget should enable fusion")
	}
}

func TestFusedGroupMemoryWithinBudget(t *testing.T) {
	items, mm := miniWorkload(t, 4)
	res, err := OptimizeMaterialization(mm, items, MatConfig{DiskBudgetBytes: 1 << 40, MaxRecords: 100})
	if err != nil {
		t.Fatal(err)
	}
	budget := int64(1 << 29)
	groups, err := FuseModels(items, res.Sigs, FuseConfig{MemBudgetBytes: budget, OptimizerSlotBytes: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range groups {
		if len(g.Items) > 1 && g.PeakMemBytes > budget {
			t.Errorf("fused group of %d models exceeds budget: %d > %d", len(g.Items), g.PeakMemBytes, budget)
		}
	}
}

func TestFuseModelsSingleModelNoFusion(t *testing.T) {
	items, mm := miniWorkload(t, 1)
	res, err := OptimizeMaterialization(mm, items, MatConfig{DiskBudgetBytes: 1 << 40, MaxRecords: 100})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := FuseModels(items, res.Sigs, FuseConfig{MemBudgetBytes: 1 << 40, OptimizerSlotBytes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || len(groups[0].Items) != 1 {
		t.Error("single model must stay a singleton group")
	}
}

// fusedExecutionModel builds the executable plan model of a fused group
// and checks it trains both branches equivalently to separate models.
func TestFusedPlanModelTrainsBothBranches(t *testing.T) {
	items, _ := miniWorkload(t, 2)
	// Force same batch/epochs so they fuse; empty materialized set keeps
	// the test focused on fusion itself.
	groups, err := FuseModels(items, map[graph.Signature]bool{}, FuseConfig{MemBudgetBytes: 1 << 40, OptimizerSlotBytes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("expected one fused group, got %d", len(groups))
	}
	g := groups[0]
	pm, _, err := BuildPlanModel(g.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(pm.Outputs) != 2 {
		t.Fatalf("fused plan model has %d outputs, want 2", len(pm.Outputs))
	}

	// Forward the fused model and each source model on the same batch.
	rng := rand.New(rand.NewSource(11))
	seq := 12
	ids := tensor.New(2, seq)
	for i := range ids.Data() {
		ids.Data()[i] = float32(rng.Intn(1024))
	}
	feeds := map[string]*tensor.Tensor{}
	for _, in := range pm.Inputs() {
		feeds[in.Name] = ids
	}
	fusedTape, err := pm.Forward(feeds, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range g.Items {
		srcTape, err := it.Model.Forward(map[string]*tensor.Tensor{"ids": ids}, false)
		if err != nil {
			t.Fatal(err)
		}
		if !fusedTape.Output(pm.Outputs[i]).AllClose(srcTape.Output(it.Model.Outputs[0]), 1e-5) {
			t.Errorf("fused branch %d diverges from source model", i)
		}
	}
}

func TestEstimatePeakMemoryComponents(t *testing.T) {
	items, _ := miniWorkload(t, 1)
	plan, err := SolveReusePlan(items[0].Prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	est := EstimatePeakMemory(plan, 16, 2)
	if est.ParamBytes <= 0 || est.ActivationPeak <= 0 {
		t.Errorf("estimate has empty components: %+v", est)
	}
	if est.WorkspaceBytes != items[0].Prof.HW.WorkspaceBytes {
		t.Error("workspace not taken from hardware config")
	}
	// Optimizer state covers trainable params at 2 bytes/byte.
	_, trainBytes := items[0].Prof.ParamBytes()
	if est.OptimizerBytes != 2*trainBytes {
		t.Errorf("optimizer bytes %d, want %d", est.OptimizerBytes, 2*trainBytes)
	}
	if est.Total() != est.ParamBytes+est.OptimizerBytes+est.WorkspaceBytes+est.ActivationPeak {
		t.Error("Total() does not sum components")
	}
}

func TestEstimatePeakMemoryScalesWithBatch(t *testing.T) {
	items, _ := miniWorkload(t, 1)
	plan, err := SolveReusePlan(items[0].Prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := EstimatePeakMemory(plan, 8, 2)
	b := EstimatePeakMemory(plan, 32, 2)
	if b.ActivationPeak != 4*a.ActivationPeak {
		t.Errorf("activation peak should scale linearly with batch: %d vs %d", a.ActivationPeak, b.ActivationPeak)
	}
	if b.ParamBytes != a.ParamBytes {
		t.Error("param bytes must not depend on batch size")
	}
}

// TestEstimatePeakMemoryUpperBoundsRealExecution checks the estimator
// against the real engine: the analytical activation peak (which retains
// tensors for the backward pass) must upper-bound the tape's total
// activation bytes for the forward pass.
func TestEstimatePeakMemoryUpperBoundsRealExecution(t *testing.T) {
	m := graph.NewModel("memcheck")
	in := m.AddInput("in", 16)
	d1 := m.AddNode("d1", layers.NewDense(16, 32, layers.ActTanh, 1), in)
	d2 := m.AddNode("d2", layers.NewDense(32, 32, layers.ActTanh, 2), d1)
	h := m.AddNode("h", layers.NewDense(32, 4, layers.ActNone, 3), d2)
	d1.Trainable = true
	d2.Trainable = true
	h.Trainable = true
	m.SetOutputs(h)
	prof, err := profile.Profile(m, profile.DefaultHardware())
	if err != nil {
		t.Fatal(err)
	}
	plan := CurrentPracticePlan(prof)
	batch := 8
	est := EstimatePeakMemory(plan, batch, 0)

	x := tensor.New(batch, 16)
	tape, err := m.Forward(map[string]*tensor.Tensor{"in": x}, true)
	if err != nil {
		t.Fatal(err)
	}
	real := tape.LiveActivationBytes()
	if est.ActivationPeak < real {
		t.Errorf("estimated peak %d below real forward-pass bytes %d", est.ActivationPeak, real)
	}
}

func TestFusionGainsGrowWithModelCount(t *testing.T) {
	// More models sharing a trunk → more frozen work to share → larger
	// relative savings (the Figure 9 trend).
	ratios := map[int]float64{}
	for _, n := range []int{2, 4} {
		items, mm := miniWorkload(t, n)
		res, err := OptimizeMaterialization(mm, items, MatConfig{DiskBudgetBytes: 0, MaxRecords: 100})
		if err != nil {
			t.Fatal(err)
		}
		groups, err := FuseModels(items, res.Sigs, FuseConfig{MemBudgetBytes: 1 << 40, OptimizerSlotBytes: 2})
		if err != nil {
			t.Fatal(err)
		}
		var unfused int64
		for _, it := range items {
			plan, err := SolveReusePlan(it.Prof, res.Sigs)
			if err != nil {
				t.Fatal(err)
			}
			unfused += plan.CostPerRecord * int64(it.Epochs)
		}
		ratios[n] = float64(unfused) / float64(TotalPlanCost(groups))
	}
	if ratios[4] < ratios[2] {
		t.Errorf("fusion speedup should grow with model count: %v", ratios)
	}
	if ratios[4] <= 1 {
		t.Errorf("fusion of 4 models should save work: ratio %v", ratios[4])
	}
}

var _ = mmg.Build // keep import if refactors drop direct uses

// TestFuseModelsPropertyNeverWorse: on random small workloads, the fused
// plan's total cost never exceeds the unfused total and every multi-model
// group respects the memory budget.
func TestFuseModelsPropertyNeverWorse(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shared := layers.NewDense(6, 8, layers.ActTanh, 77)
		n := 2 + rng.Intn(3)
		var items []WorkItem
		for i := 0; i < n; i++ {
			m := graph.NewModel(fmt.Sprintf("p%d", i))
			in := m.AddInput("in", 6)
			s := m.AddNode("s", shared, in)
			h := m.AddNode("h", layers.NewDense(8, 2, layers.ActNone, rng.Int63()), s)
			h.Trainable = true
			m.SetOutputs(h)
			prof, err := profile.Profile(m, miniHW)
			if err != nil {
				return false
			}
			items = append(items, WorkItem{
				Model: m, Prof: prof,
				Epochs:    1 + rng.Intn(3),
				BatchSize: []int{8, 16}[rng.Intn(2)],
				LR:        1e-3,
			})
		}
		budget := int64(1 << (25 + rng.Intn(16)))
		groups, err := FuseModels(items, nil, FuseConfig{MemBudgetBytes: budget, OptimizerSlotBytes: 2})
		if err != nil {
			return false
		}
		var unfused int64
		for _, it := range items {
			plan, err := SolveReusePlan(it.Prof, nil)
			if err != nil {
				return false
			}
			unfused += plan.CostPerRecord * int64(it.Epochs)
		}
		if TotalPlanCost(groups) > unfused {
			return false
		}
		covered := 0
		for _, g := range groups {
			covered += len(g.Items)
			if len(g.Items) > 1 && g.PeakMemBytes > budget {
				return false
			}
		}
		return covered == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestFuseStatsAndGroupName pins the Algorithm 1 search counters and the
// group naming used by traces and conformance reports.
func TestFuseStatsAndGroupName(t *testing.T) {
	items, mm := miniWorkload(t, 4)
	res, err := OptimizeMaterialization(mm, items, MatConfig{DiskBudgetBytes: 1 << 40, MaxRecords: 100})
	if err != nil {
		t.Fatal(err)
	}
	stats := &FuseStats{}
	groups, err := FuseModels(items, res.Sigs, FuseConfig{MemBudgetBytes: 1 << 40, OptimizerSlotBytes: 2, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	merges := len(items) - len(groups)
	if stats.Rounds != merges {
		t.Errorf("Rounds = %d, want one per merge (%d)", stats.Rounds, merges)
	}
	if stats.PairsEvaluated < merges {
		t.Errorf("PairsEvaluated = %d, below the %d merges performed", stats.PairsEvaluated, merges)
	}
	for _, g := range groups {
		want := g.Items[0].Model.Name
		if len(g.Items) > 1 {
			want = fmt.Sprintf("%s+%d", want, len(g.Items)-1)
		}
		if g.Name() != want {
			t.Errorf("group name %q, want %q", g.Name(), want)
		}
	}

	// With a 1-byte budget, every evaluated pair is rejected.
	stats2 := &FuseStats{}
	if _, err := FuseModels(items, res.Sigs, FuseConfig{MemBudgetBytes: 1, OptimizerSlotBytes: 2, Stats: stats2}); err != nil {
		t.Fatal(err)
	}
	if stats2.Rounds != 0 {
		t.Errorf("Rounds = %d under 1-byte budget, want 0", stats2.Rounds)
	}
	if stats2.PairsRejected != stats2.PairsEvaluated || stats2.PairsEvaluated == 0 {
		t.Errorf("rejected %d of %d evaluated; all should be rejected", stats2.PairsRejected, stats2.PairsEvaluated)
	}
}
