package opt

import (
	"fmt"

	"nautilus/internal/graph"
	"nautilus/internal/layers"
	"nautilus/internal/profile"
)

// GreedyTrapWorkload builds a four-model workload on which Algorithm 1 is
// provably suboptimal, together with a memory budget that exposes the
// trap. It backs the enum-vs-greedy fixture test and the `-exp fusion`
// benchmark.
//
// The construction: four models A..D over one shared input, with three
// frozen trunk blocks shared pairwise — P (the widest) by {A,B}, Q by
// {A,C}, R by {B,D} — plus a private frozen "ballast" block per model so
// peak memory grows with member count. The returned budget sits between
// the largest two-model peak and the smallest three-model peak, so
// exactly the pairs are fusible. Greedy grabs the single best pair {A,B}
// (sharing P) and thereby strands C and D, which share nothing; the
// optimal partition {A,C} + {B,D} shares Q and R, and cost(Q) + cost(R) >
// cost(P), so enumeration beats greedy strictly.
func GreedyTrapWorkload() (items []WorkItem, memBudget int64, err error) {
	hw := profile.Hardware{
		FLOPSThroughput: 6e12,
		DiskThroughput:  6e10,
		WorkspaceBytes:  1 << 28,
	}
	// Shared frozen trunks: P is wider (costlier) than Q and R, but
	// narrower than Q+R combined.
	trunkP := layers.NewDense(64, 200, layers.ActTanh, 101)
	trunkQ := layers.NewDense(64, 150, layers.ActTanh, 102)
	trunkR := layers.NewDense(64, 150, layers.ActTanh, 103)

	build := func(name string, headSeed int64, trunks ...*layers.Dense) (WorkItem, error) {
		m := graph.NewModel(name)
		in := m.AddInput("in", 64)
		width := 600
		parts := make([]*graph.Node, 0, len(trunks)+1)
		for i, tr := range trunks {
			parts = append(parts, m.AddNode(fmt.Sprintf("trunk%d", i), tr, in))
			width += 150
			if tr == trunkP {
				width += 50
			}
		}
		// Private ballast: distinct layer instances never merge, so each
		// member adds its full parameter + activation footprint and member
		// count dominates a candidate group's peak memory.
		parts = append(parts, m.AddNode("ballast", layers.NewDense(64, 600, layers.ActTanh, headSeed+500), in))
		cat := m.AddNode("cat", layers.NewConcat(len(parts)), parts...)
		h := m.AddNode("h", layers.NewDense(width, 2, layers.ActNone, headSeed), cat)
		h.Trainable = true
		m.SetOutputs(h)
		prof, err := profile.Profile(m, hw)
		if err != nil {
			return WorkItem{}, err
		}
		return WorkItem{Model: m, Prof: prof, Epochs: 1, BatchSize: 8, LR: 1e-3}, nil
	}

	specs := []struct {
		name   string
		seed   int64
		trunks []*layers.Dense
	}{
		{"trapA", 301, []*layers.Dense{trunkP, trunkQ}},
		{"trapB", 302, []*layers.Dense{trunkP, trunkR}},
		{"trapC", 303, []*layers.Dense{trunkQ}},
		{"trapD", 304, []*layers.Dense{trunkR}},
	}
	for _, s := range specs {
		it, err := build(s.name, s.seed, s.trunks...)
		if err != nil {
			return nil, 0, err
		}
		items = append(items, it)
	}

	// Compute the separating budget empirically: every pair must fit,
	// no triple may. buildItemsGroup needs only OptimizerSlotBytes here.
	cfg := FuseConfig{OptimizerSlotBytes: 2}
	var maxPair, minTriple int64
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			g, err := buildItemsGroup([]WorkItem{items[i], items[j]}, nil, cfg)
			if err != nil {
				return nil, 0, err
			}
			if g.PeakMemBytes > maxPair {
				maxPair = g.PeakMemBytes
			}
			for k := j + 1; k < len(items); k++ {
				t, err := buildItemsGroup([]WorkItem{items[i], items[j], items[k]}, nil, cfg)
				if err != nil {
					return nil, 0, err
				}
				if minTriple == 0 || t.PeakMemBytes < minTriple {
					minTriple = t.PeakMemBytes
				}
			}
		}
	}
	if maxPair >= minTriple {
		return nil, 0, fmt.Errorf("opt: trap fixture not memory-separated: max pair peak %d >= min triple peak %d", maxPair, minTriple)
	}
	return items, maxPair + (minTriple-maxPair)/2, nil
}
