package opt

import (
	"fmt"
	"sort"
	"time"

	"nautilus/internal/graph"
	"nautilus/internal/milp"
	"nautilus/internal/mmg"
	"nautilus/internal/profile"
)

// WorkItem is one candidate (M_i, ϕ_i) of the model-selection workload as
// the optimizer sees it.
type WorkItem struct {
	Model     *graph.Model
	Prof      *profile.ModelProfile
	Epochs    int
	BatchSize int
	// LR is the item's learning rate. The optimizer ignores it; the
	// trainer uses it to build each branch's optimizer.
	LR float64
}

// MatConfig configures the materialization optimization.
type MatConfig struct {
	// DiskBudgetBytes is B_disk.
	DiskBudgetBytes int64
	// MaxRecords is r, the expected maximum number of training records the
	// storage footprint is sized for (Section 4.2.1).
	MaxRecords int
	// Solver selects "bnb" (branch & bound over Z with exact min-cut
	// sub-evaluation; the default) or "milp" (the paper's joint MILP via
	// the generic simplex solver; tractable at small workload sizes).
	Solver string
	// MaxNodes caps the branch-and-bound tree (default 50k). On exhaustion
	// the best incumbent (at least as good as greedy) is returned.
	MaxNodes int
}

// MatCandidate is one materializable intermediate the optimizer may choose:
// a merged multi-model node with its storage and load costs.
type MatCandidate struct {
	Node        *graph.Node
	Sig         graph.Signature
	BytesPerRec int64
	SharedBy    int // how many candidate models contain this expression
}

// MatResult is the outcome of the materialization optimization.
type MatResult struct {
	// Materialized is the chosen set V.
	Materialized []MatCandidate
	// Sigs indexes V by expression signature.
	Sigs map[graph.Signature]bool
	// Plans maps each workload model to its optimal reuse plan given V.
	Plans map[*graph.Model]*Plan
	// TotalCostFLOPs is Σ_i C(M_i^opt)·r·epochs_i (Equation 6).
	TotalCostFLOPs int64
	// StorageBytes is the storage footprint of V at r records.
	StorageBytes int64
	// SolveTime and NodesExplored report optimizer effort (Section 5.3).
	SolveTime     time.Duration
	NodesExplored int
}

// OptimizeMaterialization solves the materialization optimization problem
// (Section 4.2): choose V ⊆ U minimizing total training cost subject to the
// storage budget, and derive each model's optimal reuse plan.
func OptimizeMaterialization(mm *mmg.MultiModel, items []WorkItem, cfg MatConfig) (*MatResult, error) {
	//lint:ignore determinism wall-clock measurement of solver time, reported as SolveTime
	start := time.Now()
	if cfg.MaxRecords <= 0 {
		return nil, fmt.Errorf("opt: MaxRecords must be positive")
	}
	mmProf, err := profile.Profile(mm.Graph, itemsHW(items))
	if err != nil {
		return nil, err
	}
	cands := candidates(mm, mmProf)

	var chosen map[graph.Signature]bool
	var explored int
	switch cfg.Solver {
	case "", "bnb":
		chosen, explored, err = solveBnB(cands, items, cfg)
	case "milp":
		chosen, explored, err = solveMILP(cands, items, cfg)
	default:
		err = fmt.Errorf("opt: unknown solver %q", cfg.Solver)
	}
	if err != nil {
		return nil, err
	}

	res := &MatResult{Sigs: chosen, Plans: map[*graph.Model]*Plan{}, NodesExplored: explored}
	for _, c := range cands {
		if chosen[c.Sig] {
			res.Materialized = append(res.Materialized, c)
			res.StorageBytes += c.BytesPerRec * int64(cfg.MaxRecords)
		}
	}
	for _, it := range items {
		plan, err := SolveReusePlan(it.Prof, chosen)
		if err != nil {
			return nil, err
		}
		res.Plans[it.Model] = plan
		res.TotalCostFLOPs += plan.CostPerRecord * int64(cfg.MaxRecords) * int64(it.Epochs)
	}
	// Post-process (Section 4.2.2): drop materialized layers no plan loads.
	res.pruneUnused(cfg.MaxRecords)
	//lint:ignore determinism wall-clock measurement of solver time, reported as SolveTime
	res.SolveTime = time.Since(start)
	return res, nil
}

// pruneUnused removes chosen candidates that no reuse plan actually loads.
func (r *MatResult) pruneUnused(maxRecords int) {
	used := map[graph.Signature]bool{}
	for _, plan := range r.Plans {
		for _, n := range plan.LoadedNodes() {
			used[plan.Prof.Sigs[n]] = true
		}
	}
	var kept []MatCandidate
	r.StorageBytes = 0
	for _, c := range r.Materialized {
		if used[c.Sig] {
			kept = append(kept, c)
			r.StorageBytes += c.BytesPerRec * int64(maxRecords)
		} else {
			delete(r.Sigs, c.Sig)
		}
	}
	r.Materialized = kept
}

// candidates extracts the candidate set U from the multi-model graph,
// ordered by descending sharing then size (a good branching order).
func candidates(mm *mmg.MultiModel, mmProf *profile.ModelProfile) []MatCandidate {
	var out []MatCandidate
	for _, n := range mm.MaterializableNodes() {
		out = append(out, MatCandidate{
			Node:        n,
			Sig:         mm.Sig[n],
			BytesPerRec: mmProf.Layers[n].OutBytes,
			SharedBy:    mm.SharedCount(n),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SharedBy != out[j].SharedBy {
			return out[i].SharedBy > out[j].SharedBy
		}
		if out[i].BytesPerRec != out[j].BytesPerRec {
			return out[i].BytesPerRec < out[j].BytesPerRec
		}
		return out[i].Sig < out[j].Sig
	})
	return out
}

// workloadCost evaluates Σ_i C(M_i^opt)·epochs_i (per record) exactly for a
// given loadable set via per-model min-cuts.
func workloadCost(items []WorkItem, sigs map[graph.Signature]bool) (int64, error) {
	var total int64
	for _, it := range items {
		plan, err := SolveReusePlan(it.Prof, sigs)
		if err != nil {
			return 0, err
		}
		total += plan.CostPerRecord * int64(it.Epochs)
	}
	return total, nil
}

// solveBnB searches subsets of U by depth-first branch & bound. The lower
// bound of a partial assignment materializes every undecided candidate for
// free, which is valid because growing the loadable set never raises the
// optimal plan cost; budget feasibility is enforced on decided candidates
// only.
func solveBnB(cands []MatCandidate, items []WorkItem, cfg MatConfig) (map[graph.Signature]bool, int, error) {
	maxNodes := cfg.MaxNodes
	if maxNodes == 0 {
		maxNodes = 50_000
	}
	r := int64(cfg.MaxRecords)

	// Incumbent: greedy in candidate order.
	bestSigs, bestCost, err := greedyMat(cands, items, cfg)
	if err != nil {
		return nil, 0, err
	}

	explored := 0
	var firstErr error
	sigs := map[graph.Signature]bool{}

	// The optimistic bound treats undecided candidates as free and
	// materialized; at depth i that's {decided yes} ∪ cands[i:].
	var dfs func(i int, usedBytes int64)
	dfs = func(i int, usedBytes int64) {
		if firstErr != nil || explored >= maxNodes {
			return
		}
		explored++
		// Bound with all undecided included.
		opt := map[graph.Signature]bool{}
		for s := range sigs {
			opt[s] = true
		}
		for _, c := range cands[i:] {
			opt[c.Sig] = true
		}
		bound, err := workloadCost(items, opt)
		if err != nil {
			firstErr = err
			return
		}
		if bound >= bestCost {
			return
		}
		if i == len(cands) {
			// bound is exact here.
			bestCost = bound
			bestSigs = map[graph.Signature]bool{}
			for s := range sigs {
				bestSigs[s] = true
			}
			return
		}
		c := cands[i]
		if usedBytes+c.BytesPerRec*r <= cfg.DiskBudgetBytes {
			sigs[c.Sig] = true
			dfs(i+1, usedBytes+c.BytesPerRec*r)
			delete(sigs, c.Sig)
		}
		dfs(i+1, usedBytes)
	}
	dfs(0, 0)
	if firstErr != nil {
		return nil, explored, firstErr
	}
	return bestSigs, explored, nil
}

// greedyMat builds the initial incumbent: scan candidates in order, keep a
// candidate if it fits the budget and strictly lowers workload cost.
func greedyMat(cands []MatCandidate, items []WorkItem, cfg MatConfig) (map[graph.Signature]bool, int64, error) {
	r := int64(cfg.MaxRecords)
	sigs := map[graph.Signature]bool{}
	cost, err := workloadCost(items, sigs)
	if err != nil {
		return nil, 0, err
	}
	var used int64
	for _, c := range cands {
		if used+c.BytesPerRec*r > cfg.DiskBudgetBytes {
			continue
		}
		sigs[c.Sig] = true
		nc, err := workloadCost(items, sigs)
		if err != nil {
			return nil, 0, err
		}
		if nc < cost {
			cost = nc
			used += c.BytesPerRec * r
		} else {
			delete(sigs, c.Sig)
		}
	}
	return sigs, cost, nil
}

// solveMILP builds and solves the joint MILP of Section 4.2.2
// (Equations 8–10) with the generic simplex + branch & bound solver.
func solveMILP(cands []MatCandidate, items []WorkItem, cfg MatConfig) (map[graph.Signature]bool, int, error) {
	p, zVar := BuildMILP(cands, items, cfg)
	sol, err := milp.Solve(p, milp.Options{})
	if err != nil {
		return nil, 0, err
	}
	if sol.Status != milp.Optimal {
		return nil, 0, fmt.Errorf("opt: MILP status %v", sol.Status)
	}
	chosen := map[graph.Signature]bool{}
	for sig, v := range zVar {
		if sol.X[v] > 0.5 {
			chosen[sig] = true
		}
	}
	return chosen, 1, nil
}

// BuildMILP constructs the paper's MILP (Equations 8–10): binary X_{i,j}
// (layer present), Y_{i,j} (layer computed), Z_k (candidate materialized),
// with the storage-budget and structural constraints. It returns the
// problem and the Z variable index per candidate signature.
func BuildMILP(cands []MatCandidate, items []WorkItem, cfg MatConfig) (*milp.Problem, map[graph.Signature]int) {
	p := &milp.Problem{}
	r := float64(cfg.MaxRecords)

	zVar := map[graph.Signature]int{}
	newVar := func(obj float64) int {
		v := p.NumVars
		p.NumVars++
		p.Minimize = append(p.Minimize, obj)
		p.Binary = append(p.Binary, true)
		return v
	}
	for _, c := range cands {
		zVar[c.Sig] = newVar(0)
	}

	for _, it := range items {
		scale := r * float64(it.Epochs)
		xVar := map[*graph.Node]int{}
		yVar := map[*graph.Node]int{}
		for _, n := range it.Prof.Model.Reachable() {
			lp := it.Prof.Layers[n]
			// Objective: X·cload + Y·(ccomp − cload), scaled (Equation 9).
			xVar[n] = newVar(float64(lp.LoadFLOPs) * scale)
			if !n.IsInput() {
				yVar[n] = newVar(float64(lp.CompFLOPs-lp.LoadFLOPs) * scale)
			}
		}
		outs := map[*graph.Node]bool{}
		for _, o := range it.Prof.Model.Outputs {
			outs[o] = true
		}
		for _, n := range it.Prof.Model.Reachable() {
			// (a) outputs present.
			if outs[n] {
				p.AddConstraint(milp.GE, 1, milp.Term{Var: xVar[n], Coef: 1})
			}
			if n.IsInput() {
				continue
			}
			// (b) Y ≤ X.
			p.AddConstraint(milp.GE, 0, milp.Term{Var: xVar[n], Coef: 1}, milp.Term{Var: yVar[n], Coef: -1})
			// (c) computed ⇒ every parent present.
			for _, par := range n.Parents {
				p.AddConstraint(milp.GE, 0, milp.Term{Var: xVar[par], Coef: 1}, milp.Term{Var: yVar[n], Coef: -1})
			}
			// (d) loaded (X−Y=1) only if the matching candidate is
			// materialized; non-materializable layers have no candidate and
			// get X−Y ≤ 0.
			sig := it.Prof.Sigs[n]
			if z, ok := zVar[sig]; ok && it.Prof.Layers[n].Materializable {
				p.AddConstraint(milp.LE, 0,
					milp.Term{Var: xVar[n], Coef: 1}, milp.Term{Var: yVar[n], Coef: -1}, milp.Term{Var: z, Coef: -1})
			} else {
				p.AddConstraint(milp.LE, 0,
					milp.Term{Var: xVar[n], Coef: 1}, milp.Term{Var: yVar[n], Coef: -1})
			}
		}
	}
	// (e) storage budget.
	var terms []milp.Term
	for _, c := range cands {
		terms = append(terms, milp.Term{Var: zVar[c.Sig], Coef: float64(c.BytesPerRec) * r})
	}
	if len(terms) > 0 {
		p.AddConstraint(milp.LE, float64(cfg.DiskBudgetBytes), terms...)
	}
	return p, zVar
}

// itemsHW returns the hardware profile shared by the workload's profiles.
func itemsHW(items []WorkItem) profile.Hardware {
	if len(items) > 0 {
		return items[0].Prof.HW
	}
	return profile.DefaultHardware()
}
