package opt

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"nautilus/internal/graph"
	"nautilus/internal/layers"
	"nautilus/internal/mmg"
	"nautilus/internal/models"
	"nautilus/internal/profile"
)

// miniHW is hardware proportioned for mini-scale models: ~100 FLOPs of
// compute per byte of disk bandwidth, so loading a tiny block's output can
// beat recomputing its (short) frozen chain — the same regime paper-scale
// models occupy at 12,000 FLOPs/byte. (With paper hardware and mini
// models, recomputing everything is genuinely optimal and MAT OPT would
// correctly choose to materialize nothing.)
var miniHW = profile.Hardware{FLOPSThroughput: 6e12, DiskThroughput: 6e10, WorkspaceBytes: 1 << 28}

// miniWorkload builds a small feature-transfer model-selection workload
// over a shared mini BERT hub.
func miniWorkload(t *testing.T, n int) ([]WorkItem, *mmg.MultiModel) {
	t.Helper()
	hub := models.NewBERTHub(models.BERTMini())
	// Two strategies cycled: consecutive models pair up on a shared
	// feature, as the Table 3 grids do (several lr/batch configs per
	// strategy).
	strats := []models.FeatureStrategy{
		models.FeatLastHidden, models.FeatSecondLastHidden,
	}
	var items []WorkItem
	var ms []*graph.Model
	for i := 0; i < n; i++ {
		m, err := hub.FeatureTransferModel(fmt.Sprintf("m%d", i), strats[i%len(strats)], 9, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		prof, err := profile.Profile(m, miniHW)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, WorkItem{Model: m, Prof: prof, Epochs: 5, BatchSize: 16})
		ms = append(ms, m)
	}
	mm, err := mmg.Build(ms...)
	if err != nil {
		t.Fatal(err)
	}
	return items, mm
}

func TestOptimizeMaterializationRespectsBudget(t *testing.T) {
	items, mm := miniWorkload(t, 3)
	for _, budget := range []int64{0, 10_000, 1 << 30} {
		res, err := OptimizeMaterialization(mm, items, MatConfig{
			DiskBudgetBytes: budget, MaxRecords: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.StorageBytes > budget {
			t.Errorf("budget %d: storage %d exceeds it", budget, res.StorageBytes)
		}
		if budget == 0 && len(res.Materialized) != 0 {
			t.Error("zero budget must materialize nothing")
		}
	}
}

func TestOptimizeMaterializationZeroBudgetEqualsCurrentPractice(t *testing.T) {
	items, mm := miniWorkload(t, 2)
	res, err := OptimizeMaterialization(mm, items, MatConfig{DiskBudgetBytes: 0, MaxRecords: 100})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, it := range items {
		want += CurrentPracticePlan(it.Prof).CostPerRecord * 100 * int64(it.Epochs)
	}
	if res.TotalCostFLOPs != want {
		t.Errorf("zero-budget cost %d, want current practice %d", res.TotalCostFLOPs, want)
	}
}

func TestOptimizeMaterializationMonotoneInBudget(t *testing.T) {
	// Property: a larger storage budget never yields a worse plan.
	items, mm := miniWorkload(t, 3)
	var prev int64 = 1 << 62
	for _, budget := range []int64{0, 1 << 16, 1 << 20, 1 << 24, 1 << 40} {
		res, err := OptimizeMaterialization(mm, items, MatConfig{DiskBudgetBytes: budget, MaxRecords: 100})
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalCostFLOPs > prev {
			t.Errorf("budget %d: cost %d worse than smaller budget's %d", budget, res.TotalCostFLOPs, prev)
		}
		prev = res.TotalCostFLOPs
	}
}

func TestOptimizeMaterializationBnBMatchesMILP(t *testing.T) {
	// The scalable solver and the faithful Equation 8–10 MILP must find
	// plans of equal cost.
	items, mm := miniWorkload(t, 2)
	for _, budget := range []int64{1 << 18, 1 << 22, 1 << 40} {
		bnb, err := OptimizeMaterialization(mm, items, MatConfig{
			DiskBudgetBytes: budget, MaxRecords: 50, Solver: "bnb",
		})
		if err != nil {
			t.Fatal(err)
		}
		ml, err := OptimizeMaterialization(mm, items, MatConfig{
			DiskBudgetBytes: budget, MaxRecords: 50, Solver: "milp",
		})
		if err != nil {
			t.Fatal(err)
		}
		if bnb.TotalCostFLOPs != ml.TotalCostFLOPs {
			t.Errorf("budget %d: bnb %d vs milp %d", budget, bnb.TotalCostFLOPs, ml.TotalCostFLOPs)
		}
	}
}

func TestOptimizeMaterializationRandomDAGsBnBMatchesMILP(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Two random models sharing a frozen prefix.
		shared := layers.NewDense(4, 6, layers.ActTanh, 42)
		var items []WorkItem
		var ms []*graph.Model
		for i := 0; i < 2; i++ {
			m := graph.NewModel(fmt.Sprintf("rm%d", i))
			in := m.AddInput("in", 4)
			s := m.AddNode("shared", shared, in)
			d := m.AddNode("d", layers.NewDense(6, 4+rng.Intn(4), layers.ActNone, rng.Int63()), s)
			d.Trainable = rng.Intn(2) == 0
			h := m.AddNode("h", layers.NewDense(d.Layer.(*layers.Dense).Out, 2, layers.ActNone, rng.Int63()), d)
			h.Trainable = true
			m.SetOutputs(h)
			prof, err := profile.Profile(m, profile.DefaultHardware())
			if err != nil {
				return false
			}
			items = append(items, WorkItem{Model: m, Prof: prof, Epochs: 1 + rng.Intn(5), BatchSize: 16})
			ms = append(ms, m)
		}
		mm, err := mmg.Build(ms...)
		if err != nil {
			return false
		}
		budget := int64(rng.Intn(100_000))
		a, err := OptimizeMaterialization(mm, items, MatConfig{DiskBudgetBytes: budget, MaxRecords: 20, Solver: "bnb"})
		if err != nil {
			return false
		}
		b, err := OptimizeMaterialization(mm, items, MatConfig{DiskBudgetBytes: budget, MaxRecords: 20, Solver: "milp"})
		if err != nil {
			return false
		}
		return a.TotalCostFLOPs == b.TotalCostFLOPs
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOptimizeMaterializationSharedLayersCountOnce(t *testing.T) {
	// Storage for an expression shared by all models is charged once.
	items, mm := miniWorkload(t, 4)
	res, err := OptimizeMaterialization(mm, items, MatConfig{DiskBudgetBytes: 1 << 40, MaxRecords: 100})
	if err != nil {
		t.Fatal(err)
	}
	sigSeen := map[graph.Signature]int{}
	for _, c := range res.Materialized {
		sigSeen[c.Sig]++
	}
	for sig, cnt := range sigSeen {
		if cnt != 1 {
			t.Errorf("signature %v appears %d times in V", sig, cnt)
		}
	}
	// With unlimited budget the plans must beat current practice. The
	// margin at mini scale is modest (the trainable head dominates); the
	// paper-scale margin is exercised by the simulator benches.
	var cp int64
	for _, it := range items {
		cp += CurrentPracticePlan(it.Prof).CostPerRecord * 100 * int64(it.Epochs)
	}
	if float64(res.TotalCostFLOPs) > 0.95*float64(cp) {
		t.Errorf("materialization saved too little: %d vs current practice %d", res.TotalCostFLOPs, cp)
	}
}

func TestOptimizeMaterializationPrunesUnusedCandidates(t *testing.T) {
	items, mm := miniWorkload(t, 2)
	res, err := OptimizeMaterialization(mm, items, MatConfig{DiskBudgetBytes: 1 << 40, MaxRecords: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Every materialized signature must be loaded by at least one plan.
	loaded := map[graph.Signature]bool{}
	for _, plan := range res.Plans {
		for _, n := range plan.LoadedNodes() {
			loaded[plan.Prof.Sigs[n]] = true
		}
	}
	for _, c := range res.Materialized {
		if !loaded[c.Sig] {
			t.Errorf("materialized %v never loaded", c.Sig)
		}
	}
}

func TestOptimizeMaterializationInvalidConfig(t *testing.T) {
	items, mm := miniWorkload(t, 1)
	if _, err := OptimizeMaterialization(mm, items, MatConfig{MaxRecords: 0}); err == nil {
		t.Error("zero MaxRecords should error")
	}
	if _, err := OptimizeMaterialization(mm, items, MatConfig{MaxRecords: 10, Solver: "nope"}); err == nil {
		t.Error("unknown solver should error")
	}
}

func TestTheoreticalSpeedup(t *testing.T) {
	items, _ := miniWorkload(t, 4)
	s := TheoreticalSpeedup(items)
	if s <= 1 {
		t.Errorf("feature-transfer workload speedup = %v, want > 1", s)
	}
	// A workload with no frozen layers has speedup exactly 1.
	m := graph.NewModel("all-train")
	in := m.AddInput("in", 4)
	h := m.AddNode("h", layers.NewDense(4, 2, layers.ActNone, 1), in)
	h.Trainable = true
	m.SetOutputs(h)
	prof, err := profile.Profile(m, profile.DefaultHardware())
	if err != nil {
		t.Fatal(err)
	}
	s1 := TheoreticalSpeedup([]WorkItem{{Model: m, Prof: prof, Epochs: 1, BatchSize: 8}})
	// Only the input layer is materializable and it has no compute cost.
	if s1 != 1 {
		t.Errorf("all-trainable speedup = %v, want 1", s1)
	}
}
