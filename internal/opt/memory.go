package opt

import (
	"nautilus/internal/graph"
)

// MemoryEstimate breaks down the analytical peak-memory estimate of
// training a (possibly fused) reuse-plan model (Section 4.3.3).
type MemoryEstimate struct {
	ParamBytes     int64 // parameter tensors of retained nodes
	OptimizerBytes int64 // optimizer slot state for trainable params
	WorkspaceBytes int64 // DL-framework workspace (configured)
	ActivationPeak int64 // live-tensor peak × batch size
}

// Total returns the total estimated peak memory.
func (m MemoryEstimate) Total() int64 {
	return m.ParamBytes + m.OptimizerBytes + m.WorkspaceBytes + m.ActivationPeak
}

// EstimatePeakMemory performs the topological live-tensor analysis of
// Figure 5 on a reuse plan: the plan's retained forward nodes are augmented
// with a loss barrier node and one backward node per layer on the gradient
// path; a topological traversal tracks which output tensors are live and
// returns the peak, plus parameter/optimizer/workspace terms.
//
// optBytesPerTrainableByte is the optimizer's slot overhead (0 for plain
// SGD, 1 for momentum, 2 for Adam).
func EstimatePeakMemory(plan *Plan, batch int, optBytesPerTrainableByte int64) MemoryEstimate {
	prof := plan.Prof
	m := prof.Model

	// Retained nodes in topological order.
	var fwd []*graph.Node
	for _, n := range m.Reachable() {
		if plan.Actions[n] != Pruned {
			fwd = append(fwd, n)
		}
	}

	est := MemoryEstimate{WorkspaceBytes: prof.HW.WorkspaceBytes}
	seenParam := map[*graph.Param]bool{}
	trainSet := map[*graph.Param]bool{}
	for _, p := range m.TrainableParams() {
		trainSet[p] = true
	}
	for _, n := range fwd {
		if plan.Actions[n] != Computed {
			continue
		}
		for _, p := range n.Layer.Params() {
			if seenParam[p] {
				continue
			}
			seenParam[p] = true
			est.ParamBytes += p.Bytes()
			if trainSet[p] {
				est.OptimizerBytes += p.Bytes() * optBytesPerTrainableByte
			}
		}
	}

	// Augmented graph (Figure 5B). Node ids: forward nodes 0..F-1, loss
	// node F, backward node of fwd[i] at F+1+i (when present).
	// needGrad: gradient flows into the node (it or an ancestor trains).
	needGrad := map[*graph.Node]bool{}
	for _, n := range fwd {
		v := plan.Actions[n] == Computed && !n.Frozen()
		if !v {
			for _, p := range n.Parents {
				if needGrad[p] {
					v = true
					break
				}
			}
		}
		needGrad[n] = v
	}
	// Backward node exists for computed nodes that either need grads
	// themselves or must propagate them (any parent needs grads).
	hasBwd := map[*graph.Node]bool{}
	for _, n := range fwd {
		if plan.Actions[n] != Computed {
			continue
		}
		if !n.Frozen() || anyNeeds(n.Parents, needGrad) {
			hasBwd[n] = true
		}
	}

	idx := map[*graph.Node]int{}
	for i, n := range fwd {
		idx[n] = i
	}
	F := len(fwd)
	loss := F
	bwdIdx := map[*graph.Node]int{}
	total := F + 1
	for _, n := range fwd {
		if hasBwd[n] {
			bwdIdx[n] = total
			total++
		}
	}

	// Tensor sizes: each augmented node produces one tensor of its s_mem.
	size := make([]int64, total)
	for i, n := range fwd {
		size[i] = prof.Layers[n].MemBytes
	}
	size[loss] = 0 // scalar loss; negligible
	for n, bi := range bwdIdx {
		size[bi] = prof.Layers[n].MemBytes
	}

	// Consumers of each augmented node's tensor (Figure 5B edges).
	consumers := make([][]int, total)
	childrenOf := childMap(m, fwd, plan)
	outputs := map[*graph.Node]bool{}
	for _, o := range m.Outputs {
		outputs[o] = true
	}
	for _, n := range fwd {
		i := idx[n]
		// Forward edges: parent output consumed by child forward node.
		if plan.Actions[n] == Computed {
			for _, p := range n.Parents {
				consumers[idx[p]] = append(consumers[idx[p]], i)
			}
		}
		// Output → loss.
		if outputs[n] {
			consumers[i] = append(consumers[i], loss)
		}
		if bi, ok := bwdIdx[n]; ok {
			// (l_i, l'_i): backward needs the forward output.
			consumers[i] = append(consumers[i], bi)
			// (l_p, l'_i): backward needs the forward inputs.
			for _, p := range n.Parents {
				consumers[idx[p]] = append(consumers[idx[p]], bi)
			}
			// (l'_s, l'_i): child backward gradients feed this backward.
			fedFromLoss := true
			for _, s := range childrenOf[n] {
				if sb, ok := bwdIdx[s]; ok {
					consumers[sb] = append(consumers[sb], bi)
					fedFromLoss = false
				}
			}
			// Output layers (or layers whose children have no backward)
			// receive their gradient from the loss node.
			if fedFromLoss || outputs[n] {
				consumers[loss] = append(consumers[loss], bi)
			}
		}
	}

	// Topological traversal order: forward nodes in order, loss, backward
	// nodes in reverse forward order (a valid topological order of the
	// augmented DAG). Track liveness: a tensor is live from its producer
	// until its last consumer has been processed.
	order := make([]int, 0, total)
	for i := 0; i < F; i++ {
		order = append(order, i)
	}
	order = append(order, loss)
	for i := F - 1; i >= 0; i-- {
		if bi, ok := bwdIdx[fwd[i]]; ok {
			order = append(order, bi)
		}
	}
	pos := make([]int, total)
	for p, id := range order {
		pos[id] = p
	}
	lastUse := make([]int, total)
	for id := range lastUse {
		lastUse[id] = pos[id] // at least live while produced
	}
	for id, cs := range consumers {
		for _, c := range cs {
			if pos[c] > lastUse[id] {
				lastUse[id] = pos[c]
			}
		}
	}

	// Sweep: allocate at production, free after last use.
	var live, peak int64
	freeAt := make([][]int, len(order)+1)
	for id := range size {
		freeAt[lastUse[id]+1] = append(freeAt[lastUse[id]+1], id)
	}
	for p, id := range order {
		live += size[id]
		if live > peak {
			peak = live
		}
		for _, f := range freeAt[p+1] {
			live -= size[f]
		}
	}
	est.ActivationPeak = peak * int64(batch)
	return est
}

// childMap returns, for every retained node, its retained computed
// children.
func childMap(m *graph.Model, fwd []*graph.Node, plan *Plan) map[*graph.Node][]*graph.Node {
	ch := map[*graph.Node][]*graph.Node{}
	retained := map[*graph.Node]bool{}
	for _, n := range fwd {
		retained[n] = true
	}
	for _, n := range fwd {
		if plan.Actions[n] != Computed {
			continue
		}
		for _, p := range n.Parents {
			if retained[p] {
				ch[p] = append(ch[p], n)
			}
		}
	}
	return ch
}

func anyNeeds(ns []*graph.Node, set map[*graph.Node]bool) bool {
	for _, n := range ns {
		if set[n] {
			return true
		}
	}
	return false
}
