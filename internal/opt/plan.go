// Package opt implements Nautilus's optimizer (paper Section 4): optimal
// reuse-plan models via a polynomial-time min-cut reduction, the
// materialization optimization (Section 4.2) via both the faithful MILP
// formulation (Equations 8–10) and a scalable branch-and-bound search with
// exact min-cut sub-evaluation, the model fusion optimization (Section 4.3,
// Algorithm 1), the topological live-tensor peak-memory estimator
// (Section 4.3.3), and the theoretical speedup bound (Equation 11).
package opt

import (
	"fmt"
	"sort"
	"strings"

	"nautilus/internal/graph"
	"nautilus/internal/mincut"
	"nautilus/internal/profile"
)

// Action is the per-layer decision of a reuse plan (q(l, M^opt) in the
// paper): pruned, retained and computed, or retained and loaded from the
// materialized store.
type Action uint8

// Plan actions.
const (
	Pruned Action = iota
	Computed
	Loaded
)

func (a Action) String() string {
	switch a {
	case Pruned:
		return "pruned"
	case Computed:
		return "computed"
	case Loaded:
		return "loaded"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Plan is an optimal reuse-plan model (Definition 4.5): an action per node
// of the underlying graph plus the resulting per-record training cost
// (Equation 5, in FLOPs-equivalents).
type Plan struct {
	Prof    *profile.ModelProfile
	Actions map[*graph.Node]Action
	// CostPerRecord is Σ computed·c_comp + loaded·c_load (Equation 5).
	CostPerRecord int64
}

// Model returns the plan's underlying graph.
func (p *Plan) Model() *graph.Model { return p.Prof.Model }

// CountActions returns how many nodes take each action.
func (p *Plan) CountActions() (pruned, computed, loaded int) {
	for _, a := range p.Actions {
		switch a {
		case Pruned:
			pruned++
		case Computed:
			computed++
		case Loaded:
			loaded++
		}
	}
	return
}

// LoadedNodes returns the nodes the plan loads from the materialized store,
// sorted by name for deterministic output.
func (p *Plan) LoadedNodes() []*graph.Node {
	var out []*graph.Node
	for n, a := range p.Actions {
		if a == Loaded && !n.IsInput() {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ComputeFLOPsPerRecord sums c_comp over the plan's computed nodes — the
// per-record training compute the plan actually executes.
func (p *Plan) ComputeFLOPsPerRecord() int64 {
	var total int64
	for n, a := range p.Actions {
		if a == Computed {
			total += p.Prof.Layers[n].CompFLOPs
		}
	}
	return total
}

// ForwardFLOPsPerRecord sums raw forward FLOPs over computed nodes — the
// per-record cost of an inference/validation pass under the plan.
func (p *Plan) ForwardFLOPsPerRecord() int64 {
	var total int64
	for n, a := range p.Actions {
		if a == Computed {
			total += p.Prof.Layers[n].ForwardFLOPs
		}
	}
	return total
}

// LoadBytesPerRecord returns the bytes read from disk per training record
// under this plan (loaded intermediates only; dataset inputs excluded).
func (p *Plan) LoadBytesPerRecord() int64 {
	var total int64
	for n, a := range p.Actions {
		if a == Loaded && !n.IsInput() {
			total += p.Prof.Layers[n].OutBytes
		}
	}
	return total
}

// DatasetBytesPerRecord returns the bytes of raw dataset input the plan
// reads per record (input nodes retained as loaded).
func (p *Plan) DatasetBytesPerRecord() int64 {
	var total int64
	for n, a := range p.Actions {
		if a == Loaded && n.IsInput() {
			total += p.Prof.Layers[n].OutBytes
		}
	}
	return total
}

// String renders a compact plan summary.
func (p *Plan) String() string {
	pr, c, l := p.CountActions()
	var b strings.Builder
	fmt.Fprintf(&b, "plan(%s): %d computed, %d loaded, %d pruned, cost/record %d FLOPs",
		p.Model().Name, c, l, pr, p.CostPerRecord)
	return b.String()
}

// CurrentPracticePlan returns the no-reuse plan: every node computed, only
// dataset inputs loaded — what the Current Practice baseline executes.
func CurrentPracticePlan(prof *profile.ModelProfile) *Plan {
	p := &Plan{Prof: prof, Actions: map[*graph.Node]Action{}}
	for _, n := range prof.Model.Reachable() {
		if n.IsInput() {
			p.Actions[n] = Loaded
			p.CostPerRecord += prof.Layers[n].LoadFLOPs
		} else {
			p.Actions[n] = Computed
			p.CostPerRecord += prof.Layers[n].CompFLOPs
		}
	}
	return p
}

// ForcedLoadPlan builds the MAT-ALL baseline's plan: every materialized
// output at the materializable frontier is loaded unconditionally —
// "irrespective of whether it is efficient to compute them rather than
// loading them" (Section 5.1) — and everything beneath it is pruned.
func ForcedLoadPlan(prof *profile.ModelProfile) *Plan {
	m := prof.Model
	mat := m.Materializable()
	plan := &Plan{Prof: prof, Actions: map[*graph.Node]Action{}}
	for _, n := range m.Reachable() {
		plan.Actions[n] = Pruned
	}
	var visit func(n *graph.Node)
	visit = func(n *graph.Node) {
		if a := plan.Actions[n]; a != Pruned {
			return
		}
		if mat[n] {
			plan.Actions[n] = Loaded
			plan.CostPerRecord += prof.Layers[n].LoadFLOPs
			return
		}
		plan.Actions[n] = Computed
		plan.CostPerRecord += prof.Layers[n].CompFLOPs
		for _, p := range n.Parents {
			visit(p)
		}
	}
	for _, o := range m.Outputs {
		visit(o)
	}
	return plan
}

// SolveReusePlan finds the optimal reuse plan (Definition 4.5) for the
// profiled model given the set of loadable intermediates, identified by
// expression signature. Dataset inputs are always loadable. The solve is
// the polynomial-time min-cut reduction of Section 4.3.2; optimality is
// exact.
func SolveReusePlan(prof *profile.ModelProfile, loadableSigs map[graph.Signature]bool) (*Plan, error) {
	m := prof.Model
	nodes := m.Reachable()

	// Variable layout: present var per node; separate computed var only
	// for loadable non-input nodes (non-loadable nodes merge the two).
	presentVar := map[*graph.Node]int{}
	computedVar := map[*graph.Node]int{}
	nv := 0
	loadable := func(n *graph.Node) bool {
		return n.IsInput() || loadableSigs[prof.Sigs[n]]
	}
	for _, n := range nodes {
		presentVar[n] = nv
		nv++
		if !n.IsInput() {
			if loadable(n) {
				computedVar[n] = nv
				nv++
			} else {
				computedVar[n] = presentVar[n] // merged
			}
		}
	}

	e := mincut.NewEnergy(nv)
	for _, n := range nodes {
		lp := prof.Layers[n]
		switch {
		case n.IsInput():
			e.AddUnary(presentVar[n], 0, lp.LoadFLOPs)
		case loadable(n):
			e.AddUnary(presentVar[n], 0, lp.LoadFLOPs)
			e.AddUnary(computedVar[n], 0, lp.CompFLOPs-lp.LoadFLOPs)
			e.AddImplication(computedVar[n], presentVar[n])
		default:
			e.AddUnary(presentVar[n], 0, lp.CompFLOPs)
		}
		if !n.IsInput() {
			for _, par := range n.Parents {
				e.AddImplication(computedVar[n], presentVar[par])
			}
		}
	}
	for _, o := range m.Outputs {
		e.AddUnary(presentVar[o], mincut.Inf, 0) // outputs must be present
	}

	labels, cost, err := e.Solve()
	if err != nil {
		return nil, fmt.Errorf("opt: reuse plan for %q: %w", m.Name, err)
	}
	plan := &Plan{Prof: prof, Actions: map[*graph.Node]Action{}, CostPerRecord: cost}
	for _, n := range nodes {
		present := labels[presentVar[n]]
		switch {
		case !present:
			plan.Actions[n] = Pruned
		case n.IsInput():
			plan.Actions[n] = Loaded
		case labels[computedVar[n]]:
			plan.Actions[n] = Computed
		default:
			plan.Actions[n] = Loaded
		}
	}
	return plan, nil
}

// BuildPlanModel materializes a plan as an executable model: computed nodes
// keep their layer instances, loaded nodes become feed inputs keyed by
// their expression signature, pruned nodes vanish. Training the result is
// logically equivalent to training the original model (Section 4.2.1).
//
// The returned map gives the feed key (materialized-store key) for every
// feed input node name.
func BuildPlanModel(plan *Plan) (*graph.Model, map[string]graph.Signature, error) {
	src := plan.Model()
	out := graph.NewModel(src.Name + "/plan")
	mapped := map[*graph.Node]*graph.Node{}
	feeds := map[string]graph.Signature{}

	for _, n := range src.Reachable() {
		switch plan.Actions[n] {
		case Pruned:
			continue
		case Loaded:
			if n.IsInput() {
				nn := out.AddNode(n.Name, n.Layer)
				mapped[n] = nn
				continue
			}
			sig := plan.Prof.Sigs[n]
			name := "feed_" + n.Name
			nn := out.AddNode(name, graph.NewFeed(sig.String(), plan.Prof.Shapes[n]...))
			mapped[n] = nn
			feeds[name] = sig
		case Computed:
			parents := make([]*graph.Node, len(n.Parents))
			for i, p := range n.Parents {
				parents[i] = mapped[p]
				if parents[i] == nil {
					return nil, nil, fmt.Errorf("opt: plan computes %q but its parent %q is pruned", n.Name, p.Name)
				}
			}
			nn := out.AddNode(n.Name, n.Layer, parents...)
			nn.Trainable = n.Trainable
			mapped[n] = nn
		}
	}
	var outs []*graph.Node
	for _, o := range src.Outputs {
		nn := mapped[o]
		if nn == nil {
			return nil, nil, fmt.Errorf("opt: plan pruned output %q", o.Name)
		}
		outs = append(outs, nn)
	}
	out.SetOutputs(outs...)
	if _, err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("opt: plan model invalid: %w", err)
	}
	return out, feeds, nil
}
