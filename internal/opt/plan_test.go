package opt

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"nautilus/internal/graph"
	"nautilus/internal/layers"
	"nautilus/internal/profile"
	"nautilus/internal/tensor"
)

// randomDAG builds a random dense/concat DAG with random trainability —
// the adversarial input for plan-optimality property tests.
func randomDAG(rng *rand.Rand, name string) *graph.Model {
	m := graph.NewModel(name)
	in := m.AddInput("in", 2+rng.Intn(4))
	width := map[*graph.Node]int{in: in.Layer.(*graph.InputLayer).Shape[0]}
	nodes := []*graph.Node{in}
	nn := 2 + rng.Intn(5)
	for i := 0; i < nn; i++ {
		if rng.Intn(4) == 0 && len(nodes) >= 2 {
			a := nodes[rng.Intn(len(nodes))]
			b := nodes[rng.Intn(len(nodes))]
			if a != b {
				n := m.AddNode(fmt.Sprintf("cat%d", i), layers.NewConcat(2), a, b)
				n.Trainable = rng.Intn(3) == 0
				width[n] = width[a] + width[b]
				nodes = append(nodes, n)
				continue
			}
		}
		p := nodes[rng.Intn(len(nodes))]
		w := 2 + rng.Intn(4)
		n := m.AddNode(fmt.Sprintf("d%d", i), layers.NewDense(width[p], w, layers.ActNone, rng.Int63()), p)
		n.Trainable = rng.Intn(3) == 0
		width[n] = w
		nodes = append(nodes, n)
	}
	m.SetOutputs(nodes[len(nodes)-1])
	return m
}

// bruteForcePlanCost enumerates every valid action assignment and returns
// the minimum Equation-5 cost.
func bruteForcePlanCost(prof *profile.ModelProfile, loadable map[graph.Signature]bool) int64 {
	nodes := prof.Model.Reachable()
	canLoad := func(n *graph.Node) bool {
		return n.IsInput() || loadable[prof.Sigs[n]]
	}
	outputs := map[*graph.Node]bool{}
	for _, o := range prof.Model.Outputs {
		outputs[o] = true
	}
	best := int64(1) << 62
	var assign func(i int, act map[*graph.Node]Action)
	assign = func(i int, act map[*graph.Node]Action) {
		if i == len(nodes) {
			var cost int64
			for _, n := range nodes {
				a := act[n]
				if outputs[n] && a == Pruned {
					return
				}
				switch a {
				case Computed:
					if n.IsInput() {
						return // inputs cannot be computed
					}
					for _, p := range n.Parents {
						if act[p] == Pruned {
							return
						}
					}
					cost += prof.Layers[n].CompFLOPs
				case Loaded:
					if !canLoad(n) {
						return
					}
					cost += prof.Layers[n].LoadFLOPs
				}
			}
			if cost < best {
				best = cost
			}
			return
		}
		for _, a := range []Action{Pruned, Computed, Loaded} {
			act[nodes[i]] = a
			assign(i+1, act)
		}
		delete(act, nodes[i])
	}
	assign(0, map[*graph.Node]Action{})
	return best
}

func TestSolveReusePlanMatchesBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomDAG(rng, "r")
		prof, err := profile.Profile(m, profile.DefaultHardware())
		if err != nil {
			return false
		}
		// Random loadable subset of materializable nodes.
		loadable := map[graph.Signature]bool{}
		mat := m.Materializable()
		for _, n := range m.Nodes() {
			if mat[n] && !n.IsInput() && rng.Intn(2) == 0 {
				loadable[prof.Sigs[n]] = true
			}
		}
		plan, err := SolveReusePlan(prof, loadable)
		if err != nil {
			return false
		}
		want := bruteForcePlanCost(prof, loadable)
		return plan.CostPerRecord == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestSolveReusePlanNoMaterializationEqualsCurrentPractice(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		m := randomDAG(rng, "r")
		prof, err := profile.Profile(m, profile.DefaultHardware())
		if err != nil {
			t.Fatal(err)
		}
		plan, err := SolveReusePlan(prof, nil)
		if err != nil {
			t.Fatal(err)
		}
		cp := CurrentPracticePlan(prof)
		// The optimal no-materialization plan can only differ from
		// Current Practice by pruning dead branches, which randomDAG can
		// contain; cost must never exceed Current Practice.
		if plan.CostPerRecord > cp.CostPerRecord {
			t.Errorf("plan cost %d exceeds current practice %d", plan.CostPerRecord, cp.CostPerRecord)
		}
	}
}

func TestPlanLoadsAllMaterializedWhenFree(t *testing.T) {
	// With every frozen node loadable and a load cost far below compute,
	// the plan must load the frontier and prune everything above it.
	m := graph.NewModel("chain")
	in := m.AddInput("in", 64)
	d1 := m.AddNode("d1", layers.NewDense(64, 64, layers.ActNone, 1), in)
	d2 := m.AddNode("d2", layers.NewDense(64, 64, layers.ActNone, 2), d1)
	h := m.AddNode("h", layers.NewDense(64, 4, layers.ActNone, 3), d2)
	h.Trainable = true
	m.SetOutputs(h)

	// Fast disk: loading beats computing.
	hw := profile.Hardware{FLOPSThroughput: 6e12, DiskThroughput: 1e12, WorkspaceBytes: 1 << 30}
	prof, err := profile.Profile(m, hw)
	if err != nil {
		t.Fatal(err)
	}
	loadable := map[graph.Signature]bool{prof.Sigs[d1]: true, prof.Sigs[d2]: true}
	plan, err := SolveReusePlan(prof, loadable)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Actions[d2] != Loaded {
		t.Errorf("d2 action = %v, want loaded", plan.Actions[d2])
	}
	if plan.Actions[d1] != Pruned || plan.Actions[in] != Pruned {
		t.Errorf("ancestors should be pruned: d1=%v in=%v", plan.Actions[d1], plan.Actions[in])
	}
	if plan.Actions[h] != Computed {
		t.Errorf("head action = %v, want computed", plan.Actions[h])
	}
}

func TestPlanPrefersRecomputeOnSlowDisk(t *testing.T) {
	// With a glacial disk and a materialized output far larger than the
	// dataset input, loading the intermediate costs more than loading the
	// small input and recomputing: the plan must compute d1 even though
	// materialization is allowed. (This is the MAT-ALL pathology the paper
	// calls out: loading everything is not always optimal.)
	m := graph.NewModel("chain")
	in := m.AddInput("in", 4)
	d1 := m.AddNode("d1", layers.NewDense(4, 256, layers.ActNone, 1), in)
	h := m.AddNode("h", layers.NewDense(256, 2, layers.ActNone, 2), d1)
	h.Trainable = true
	m.SetOutputs(h)

	hw := profile.Hardware{FLOPSThroughput: 6e12, DiskThroughput: 1, WorkspaceBytes: 1 << 30}
	prof, err := profile.Profile(m, hw)
	if err != nil {
		t.Fatal(err)
	}
	loadable := map[graph.Signature]bool{prof.Sigs[d1]: true}
	plan, err := SolveReusePlan(prof, loadable)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Actions[d1] != Computed {
		t.Errorf("d1 action = %v, want computed (load too slow)", plan.Actions[d1])
	}
}

func TestBuildPlanModelExecutionEquivalence(t *testing.T) {
	// The reuse-plan model fed with materialized outputs must reproduce
	// the original model's outputs bit-for-bit (float tolerance).
	m := graph.NewModel("orig")
	in := m.AddInput("in", 6)
	d1 := m.AddNode("d1", layers.NewDense(6, 8, layers.ActTanh, 1), in)
	d2 := m.AddNode("d2", layers.NewDense(8, 8, layers.ActTanh, 2), d1)
	h := m.AddNode("h", layers.NewDense(8, 3, layers.ActNone, 3), d2)
	h.Trainable = true
	m.SetOutputs(h)

	hw := profile.Hardware{FLOPSThroughput: 6e12, DiskThroughput: 1e12, WorkspaceBytes: 1 << 30}
	prof, err := profile.Profile(m, hw)
	if err != nil {
		t.Fatal(err)
	}
	loadable := map[graph.Signature]bool{prof.Sigs[d2]: true}
	plan, err := SolveReusePlan(prof, loadable)
	if err != nil {
		t.Fatal(err)
	}
	pm, feeds, err := BuildPlanModel(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(feeds) != 1 {
		t.Fatalf("feeds = %v, want one", feeds)
	}

	rng := rand.New(rand.NewSource(5))
	x := tensor.RandNormal(rng, 1, 3, 6)
	origTape, err := m.Forward(map[string]*tensor.Tensor{"in": x}, false)
	if err != nil {
		t.Fatal(err)
	}
	// "Materialize" d2 and feed the plan model.
	planFeeds := map[string]*tensor.Tensor{}
	for name := range feeds {
		planFeeds[name] = origTape.Output(d2)
	}
	planTape, err := pm.Forward(planFeeds, false)
	if err != nil {
		t.Fatal(err)
	}
	if !planTape.Output(pm.Outputs[0]).AllClose(origTape.Output(h), 1e-6) {
		t.Error("plan model output differs from original")
	}

	// Gradient equivalence for the shared trainable head.
	g := tensor.RandNormal(rng, 1, 3, 3)
	if err := origTape.Backward(map[string]*tensor.Tensor{"h": g}); err != nil {
		t.Fatal(err)
	}
	if err := planTape.Backward(map[string]*tensor.Tensor{"h": g}); err != nil {
		t.Fatal(err)
	}
	p := h.Layer.Params()[0]
	if !origTape.ParamGrads()[p].AllClose(planTape.ParamGrads()[p], 1e-5) {
		t.Error("plan model gradients differ from original")
	}
}

func TestBuildPlanModelRejectsPrunedOutput(t *testing.T) {
	m := graph.NewModel("bad")
	in := m.AddInput("in", 2)
	h := m.AddNode("h", layers.NewDense(2, 2, layers.ActNone, 1), in)
	m.SetOutputs(h)
	prof, err := profile.Profile(m, profile.DefaultHardware())
	if err != nil {
		t.Fatal(err)
	}
	plan := &Plan{Prof: prof, Actions: map[*graph.Node]Action{in: Pruned, h: Pruned}}
	if _, _, err := BuildPlanModel(plan); err == nil {
		t.Error("pruned output should be rejected")
	}
}

func TestCurrentPracticePlanCountsEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randomDAG(rng, "cp")
	prof, err := profile.Profile(m, profile.DefaultHardware())
	if err != nil {
		t.Fatal(err)
	}
	cp := CurrentPracticePlan(prof)
	var want int64
	for _, n := range m.Reachable() {
		if n.IsInput() {
			want += prof.Layers[n].LoadFLOPs
		} else {
			want += prof.Layers[n].CompFLOPs
		}
	}
	if cp.CostPerRecord != want {
		t.Errorf("current practice cost %d, want %d", cp.CostPerRecord, want)
	}
	if _, _, loaded := cp.CountActions(); loaded != len(m.Inputs()) {
		t.Error("current practice should load exactly the dataset inputs")
	}
}

func TestPlanDOTRendersAllActions(t *testing.T) {
	m := graph.NewModel("dot")
	in := m.AddInput("in", 64)
	d1 := m.AddNode("d1", layers.NewDense(64, 64, layers.ActNone, 1), in)
	d2 := m.AddNode("d2", layers.NewDense(64, 64, layers.ActNone, 2), d1)
	h := m.AddNode("h", layers.NewDense(64, 4, layers.ActNone, 3), d2)
	h.Trainable = true
	m.SetOutputs(h)
	hw := profile.Hardware{FLOPSThroughput: 6e12, DiskThroughput: 1e12, WorkspaceBytes: 1 << 30}
	prof, err := profile.Profile(m, hw)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := SolveReusePlan(prof, map[graph.Signature]bool{prof.Sigs[d2]: true})
	if err != nil {
		t.Fatal(err)
	}
	dot := PlanDOT(plan)
	for _, want := range []string{"digraph", "fillcolor", "style=dashed", `"d2"`, `"h"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Pruned nodes have no outgoing solid edges to computed nodes.
	if strings.Contains(dot, `"in" -> "d1" [style=dashed`) {
		// in and d1 both pruned: the edge is either absent or dashed; both fine.
		_ = dot
	}
}
