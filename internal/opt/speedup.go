package opt

// TheoreticalSpeedup computes Equation 11: the ratio of the whole
// workload's training cost to the cost of only its non-materializable
// layers, i.e. the speedup of a hypothetical execution with zero load cost
// and unlimited storage. The FLOPs-Optimal baseline divides Current
// Practice runtimes by this bound.
func TheoreticalSpeedup(items []WorkItem) float64 {
	var full, irreducible int64
	for _, it := range items {
		e := int64(it.Epochs)
		full += it.Prof.TotalCompFLOPs() * e
		irreducible += it.Prof.NonMaterializableCompFLOPs() * e
	}
	if irreducible == 0 {
		return 1
	}
	return float64(full) / float64(irreducible)
}
