package profile

import (
	"encoding/json"
	"fmt"
	"os"
)

// CalibrationVersion is the on-disk schema version of calibration files.
// LoadCalibration rejects files written by a different major version so a
// stale or foreign file fails loudly instead of silently skewing plans.
const CalibrationVersion = 1

// ChannelFit summarizes the robust regression of one throughput channel:
// how many samples went in, how many the outlier trim discarded, the
// fitted throughput (median of per-sample work/time ratios after
// trimming), and the surviving samples' relative spread (MAD/median) —
// the fit's own noise estimate.
type ChannelFit struct {
	Samples    int     `json:"samples"`
	Trimmed    int     `json:"trimmed"`
	Throughput float64 `json:"throughput"`
	Spread     float64 `json:"spread"`
}

// Calibration is a measured hardware profile fitted from execution
// traces (internal/obs/calib): compute FLOP/s, store-read bytes/s, and
// store-write bytes/s. Apply overrides the static Hardware constants the
// planner would otherwise trust, closing the loop between the conformance
// replay's measurements and the MAT/FUSE cost model.
type Calibration struct {
	Version int `json:"version"`
	// Source names the run that produced the fit (workload, binary).
	Source string `json:"source,omitempty"`
	// CreatedUnixNs timestamps the fit (0 when unknown).
	CreatedUnixNs int64 `json:"created_unix_ns,omitempty"`

	// Compute is the FLOP/s channel (drives Hardware.FLOPSThroughput).
	Compute ChannelFit `json:"compute"`
	// Read is the store-read bytes/s channel (drives
	// Hardware.DiskThroughput, the constant behind c_load).
	Read ChannelFit `json:"read"`
	// Write is the store-append bytes/s channel. Reported for visibility
	// (checkpoint and materialization write costing); the cost model's
	// single DiskThroughput constant stays read-driven.
	Write ChannelFit `json:"write"`
}

// Apply returns base with every fitted constant overriding its static
// counterpart. Channels without a usable fit (zero throughput) leave the
// base value untouched, so a partial calibration degrades gracefully.
func (c *Calibration) Apply(base Hardware) Hardware {
	if c == nil {
		return base
	}
	hw := base
	if c.Compute.Throughput > 0 {
		hw.FLOPSThroughput = c.Compute.Throughput
	}
	if c.Read.Throughput > 0 {
		hw.DiskThroughput = c.Read.Throughput
	}
	return hw
}

// SaveCalibration writes the calibration as indented JSON at path,
// stamping the schema version.
func SaveCalibration(path string, c *Calibration) error {
	if c == nil {
		return fmt.Errorf("profile: save nil calibration")
	}
	cc := *c
	cc.Version = CalibrationVersion
	data, err := json.MarshalIndent(&cc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadCalibration reads and validates a calibration file.
func LoadCalibration(path string) (*Calibration, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("profile: read calibration: %w", err)
	}
	var c Calibration
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("profile: parse calibration %s: %w", path, err)
	}
	if c.Version != CalibrationVersion {
		return nil, fmt.Errorf("profile: calibration %s has version %d, this build reads version %d — refit it (nautilus-run -calibrate-out)",
			path, c.Version, CalibrationVersion)
	}
	if c.Compute.Throughput <= 0 && c.Read.Throughput <= 0 && c.Write.Throughput <= 0 {
		return nil, fmt.Errorf("profile: calibration %s fits no channel (all throughputs zero)", path)
	}
	return &c, nil
}

// LoadHardware loads a calibration file and applies it over base — the
// one-call path for CLIs planning against measured constants. An empty
// path returns base unchanged.
func LoadHardware(path string, base Hardware) (Hardware, error) {
	if path == "" {
		return base, nil
	}
	c, err := LoadCalibration(path)
	if err != nil {
		return base, err
	}
	return c.Apply(base), nil
}
