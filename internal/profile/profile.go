// Package profile implements the Nautilus Profiler and cost model
// (paper Sections 3 and 4.1). It derives, for every layer of a candidate
// model, the four per-record metrics the optimizer consumes:
//
//	c_comp(l) — training computation cost in FLOPs (forward ×1 for
//	            materializable layers, ×2 for frozen layers on the gradient
//	            path, ×3 for trainable layers)
//	s_disk(l) — output size on disk in bytes
//	c_load(l) — cost of loading the output from disk, expressed in missed
//	            compute FLOPs (read time × compute throughput)
//	s_mem(l)  — output size in memory, summing all internal activations for
//	            composite layers (Section 4.3.3)
//
// Shapes and FLOPs are derived analytically from the layer configs, which
// is exactly the information TensorFlow's profiler gave the original
// system; a real probe-batch cross-check lives in the tests.
package profile

import (
	"fmt"

	"nautilus/internal/graph"
	"nautilus/internal/tensor"
)

// Hardware holds the system configuration values of the optimizer: compute
// throughput, disk throughput, and per-model workspace memory. The defaults
// match the paper's experimental setup (Section 5): 6 TFLOP/s (50% of a
// Titan X's peak) and 500 MB/s SSD reads, 1 GB workspace.
type Hardware struct {
	FLOPSThroughput float64 // FLOP/s
	DiskThroughput  float64 // bytes/s
	WorkspaceBytes  int64   // DL-framework workspace memory per model
	// Workers caps the CPU kernel worker count (tensor.SetMaxWorkers).
	// 0 keeps the ambient default: the NAUTILUS_WORKERS environment
	// variable if set, else all logical cores.
	Workers int
}

// DefaultHardware returns the paper's configured hardware profile.
func DefaultHardware() Hardware {
	return Hardware{
		FLOPSThroughput: 6e12,
		DiskThroughput:  500e6,
		WorkspaceBytes:  1 << 30,
	}
}

// LoadFLOPs converts a byte count into the equivalent missed compute FLOPs,
// the unit c_load is expressed in.
func (h Hardware) LoadFLOPs(bytes int64) int64 {
	return int64(float64(bytes) / h.DiskThroughput * h.FLOPSThroughput)
}

// Seconds converts a FLOPs quantity into wall-clock seconds at the
// configured compute throughput.
func (h Hardware) Seconds(flops int64) float64 {
	return float64(flops) / h.FLOPSThroughput
}

// IOSeconds converts a byte volume into wall-clock seconds at the
// configured disk throughput — the I/O-side twin of Seconds, used when
// reports attribute time between compute and load.
func (h Hardware) IOSeconds(bytes int64) float64 {
	return float64(bytes) / h.DiskThroughput
}

// LayerProfile carries the per-record cost-model metrics of one node.
type LayerProfile struct {
	Node     *graph.Node
	OutShape []int

	ForwardFLOPs   int64 // raw forward-pass FLOPs
	CompFLOPs      int64 // c_comp with the 1×/2×/3× training multiplier
	OutBytes       int64 // s_disk
	LoadFLOPs      int64 // c_load
	MemBytes       int64 // s_mem (composite-aware)
	Materializable bool
}

// ModelProfile aggregates the profiling information of one candidate model.
type ModelProfile struct {
	Model  *graph.Model
	Layers map[*graph.Node]*LayerProfile
	Shapes map[*graph.Node][]int
	Sigs   map[*graph.Node]graph.Signature
	HW     Hardware
}

// Profile computes the full profile of a model. It fails if the model does
// not validate.
func Profile(m *graph.Model, hw Hardware) (*ModelProfile, error) {
	shapes, err := m.Validate()
	if err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	mat := m.Materializable()
	sigs := m.ExprSignatures()
	needGrad := gradPath(m)

	p := &ModelProfile{
		Model:  m,
		Layers: make(map[*graph.Node]*LayerProfile, m.NumNodes()),
		Shapes: shapes,
		Sigs:   sigs,
		HW:     hw,
	}
	for _, n := range m.Nodes() {
		in := make([][]int, len(n.Parents))
		for i, par := range n.Parents {
			in[i] = shapes[par]
		}
		outShape := shapes[n]
		outBytes := int64(tensor.NumElems(outShape)) * 4

		var fwd int64
		if !n.IsInput() {
			fwd = n.Layer.FLOPsPerRecord(in)
		}
		var comp int64
		switch {
		case n.IsInput():
			comp = 0
		case !n.Frozen():
			if pf, ok := n.Layer.(graph.PartialFLOPs); ok {
				// Partially trainable (adapter blocks): forward + input
				// gradients through the whole block, parameter gradients
				// only for the trainable sub-layers.
				comp = 2*fwd + pf.TrainableFLOPsPerRecord(in)
			} else {
				comp = 3 * fwd // forward + input gradient + parameter gradient
			}
		case needGrad[n]:
			comp = 2 * fwd // forward + input gradient only
		default:
			comp = fwd
		}

		var memBytes int64
		if n.IsInput() {
			memBytes = outBytes
		} else {
			memBytes = graph.ActivationBytesPerRecord(n, in)
		}

		p.Layers[n] = &LayerProfile{
			Node:           n,
			OutShape:       outShape,
			ForwardFLOPs:   fwd,
			CompFLOPs:      comp,
			OutBytes:       outBytes,
			LoadFLOPs:      hw.LoadFLOPs(outBytes),
			MemBytes:       memBytes,
			Materializable: mat[n],
		}
	}
	return p, nil
}

// gradPath marks nodes whose backward pass must run when the full model
// trains: a node is on the gradient path if it is trainable or any ancestor
// is. (Materializable nodes are never on it.)
func gradPath(m *graph.Model) map[*graph.Node]bool {
	need := map[*graph.Node]bool{}
	for _, n := range m.Nodes() {
		v := !n.Frozen()
		if !v {
			for _, p := range n.Parents {
				if need[p] {
					v = true
					break
				}
			}
		}
		need[n] = v
	}
	return need
}

// TotalCompFLOPs returns the per-record training cost of the unmodified
// model: the sum of c_comp over all layers (what Current Practice pays).
func (p *ModelProfile) TotalCompFLOPs() int64 {
	var total int64
	for _, lp := range p.Layers {
		total += lp.CompFLOPs
	}
	return total
}

// NonMaterializableCompFLOPs returns the per-record cost of only the
// non-materializable layers — the irreducible part of training, which the
// theoretical-speedup bound (Equation 11) divides by.
func (p *ModelProfile) NonMaterializableCompFLOPs() int64 {
	var total int64
	for _, lp := range p.Layers {
		if !lp.Materializable {
			total += lp.CompFLOPs
		}
	}
	return total
}

// ParamBytes returns the model's total parameter bytes (all, trainable).
func (p *ModelProfile) ParamBytes() (total, trainable int64) {
	t, tr := p.Model.ParamCount()
	return t * 4, tr * 4
}
