package profile

import (
	"math"
	"testing"

	"nautilus/internal/graph"
	"nautilus/internal/layers"
)

// chain builds frozen d1 → frozen d2 → trainable d3.
func chain() *graph.Model {
	m := graph.NewModel("p")
	in := m.AddInput("in", 8)
	d1 := m.AddNode("d1", layers.NewDense(8, 8, layers.ActNone, 1), in)
	_ = d1
	d2 := m.AddNode("d2", layers.NewDense(8, 8, layers.ActNone, 2), d1)
	d3 := m.AddNode("d3", layers.NewDense(8, 4, layers.ActNone, 3), d2)
	d3.Trainable = true
	m.SetOutputs(d3)
	return m
}

func TestProfileCostMultipliers(t *testing.T) {
	m := chain()
	p, err := Profile(m, DefaultHardware())
	if err != nil {
		t.Fatal(err)
	}
	d1 := p.Layers[m.Node("d1")]
	d2 := p.Layers[m.Node("d2")]
	d3 := p.Layers[m.Node("d3")]
	// d1, d2 are materializable (frozen, materializable parents): 1×.
	if d1.CompFLOPs != d1.ForwardFLOPs || d2.CompFLOPs != d2.ForwardFLOPs {
		t.Error("materializable layers must cost 1× forward")
	}
	if !d1.Materializable || !d2.Materializable {
		t.Error("frozen chain should be materializable")
	}
	// d3 trainable: 3×.
	if d3.CompFLOPs != 3*d3.ForwardFLOPs {
		t.Errorf("trainable layer cost %d, want 3×%d", d3.CompFLOPs, d3.ForwardFLOPs)
	}
	if d3.Materializable {
		t.Error("trainable layer must not be materializable")
	}
}

func TestProfileFrozenOnGradPathCosts2x(t *testing.T) {
	// trainable d1 → frozen d2 → trainable d3: d2 must pay 2×.
	m := graph.NewModel("p2")
	in := m.AddInput("in", 8)
	d1 := m.AddNode("d1", layers.NewDense(8, 8, layers.ActNone, 1), in)
	d1.Trainable = true
	d2 := m.AddNode("d2", layers.NewDense(8, 8, layers.ActNone, 2), d1)
	d3 := m.AddNode("d3", layers.NewDense(8, 4, layers.ActNone, 3), d2)
	d3.Trainable = true
	m.SetOutputs(d3)
	p, err := Profile(m, DefaultHardware())
	if err != nil {
		t.Fatal(err)
	}
	lp := p.Layers[d2]
	if lp.CompFLOPs != 2*lp.ForwardFLOPs {
		t.Errorf("frozen-on-grad-path cost %d, want 2×%d", lp.CompFLOPs, lp.ForwardFLOPs)
	}
	if lp.Materializable {
		t.Error("frozen layer below a trainable one is not materializable")
	}
}

func TestProfileLoadCostMatchesHardware(t *testing.T) {
	m := chain()
	hw := Hardware{FLOPSThroughput: 1e12, DiskThroughput: 1e9, WorkspaceBytes: 1}
	p, err := Profile(m, hw)
	if err != nil {
		t.Fatal(err)
	}
	d1 := p.Layers[m.Node("d1")]
	// 8 floats = 32 bytes; 32/1e9 s × 1e12 FLOP/s = 32000 FLOPs.
	if d1.OutBytes != 32 {
		t.Fatalf("out bytes = %d", d1.OutBytes)
	}
	if d1.LoadFLOPs != 32000 {
		t.Errorf("load FLOPs = %d, want 32000", d1.LoadFLOPs)
	}
}

func TestProfileCompositeMemoryExceedsOutput(t *testing.T) {
	m := graph.NewModel("c")
	in := m.AddInput("in", 4, 16)
	blk := m.AddNode("blk", layers.NewTransformerBlock(layers.TransformerBlockConfig{
		Seq: 4, Dim: 16, Heads: 2, FFN: 32, Seed: 9,
	}), in)
	m.SetOutputs(blk)
	p, err := Profile(m, DefaultHardware())
	if err != nil {
		t.Fatal(err)
	}
	lp := p.Layers[blk]
	if lp.MemBytes <= lp.OutBytes {
		t.Errorf("composite s_mem %d should exceed s_disk %d (internal activations)", lp.MemBytes, lp.OutBytes)
	}
}

func TestAggregates(t *testing.T) {
	m := chain()
	p, err := Profile(m, DefaultHardware())
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalCompFLOPs() <= p.NonMaterializableCompFLOPs() {
		t.Error("total must exceed irreducible for a frozen-trunk model")
	}
	total, trainable := p.ParamBytes()
	if total <= trainable || trainable != (8*4+4)*4 {
		t.Errorf("param bytes total=%d trainable=%d", total, trainable)
	}
}

func TestHardwareSeconds(t *testing.T) {
	hw := Hardware{FLOPSThroughput: 2e12}
	if got := hw.Seconds(4e12); got != 2 {
		t.Errorf("Seconds = %v, want 2", got)
	}
}

func TestHardwareIOSeconds(t *testing.T) {
	hw := Hardware{FLOPSThroughput: 2e12, DiskThroughput: 500e6}
	if got := hw.IOSeconds(1e9); got != 2 {
		t.Errorf("IOSeconds = %v, want 2", got)
	}
	// IOSeconds and Seconds∘LoadFLOPs express the same time: loading b
	// bytes takes as long as the compute those FLOP-equivalents displace.
	b := int64(123456789)
	if got, want := hw.Seconds(hw.LoadFLOPs(b)), hw.IOSeconds(b); math.Abs(got-want) > 1e-9*want {
		t.Errorf("Seconds(LoadFLOPs(b)) = %v, IOSeconds(b) = %v", got, want)
	}
}

func TestProfileInvalidModel(t *testing.T) {
	m := graph.NewModel("bad")
	m.AddInput("in", 2)
	if _, err := Profile(m, DefaultHardware()); err == nil {
		t.Error("invalid model should not profile")
	}
}

// TestHardwareWorkersDefault pins the contract that the default profile
// does not cap kernel parallelism: Workers == 0 defers to the ambient
// tensor-package default (NAUTILUS_WORKERS or all logical cores), which
// core.New leaves untouched.
func TestHardwareWorkersDefault(t *testing.T) {
	if w := DefaultHardware().Workers; w != 0 {
		t.Fatalf("DefaultHardware().Workers = %d, want 0 (no cap)", w)
	}
	hw := DefaultHardware()
	hw.Workers = 4
	if hw.Workers != 4 {
		t.Fatal("Workers must be settable per configuration")
	}
}
