// Package simclock replays optimized (or baseline) training plans against
// a deterministic cost clock, producing paper-scale runtimes without GPU
// hardware. Time is charged from the same cost model the optimizer uses —
// FLOPs at the configured compute throughput plus bytes at the configured
// disk bandwidth (Table 2) — plus fixed per-model and per-session
// overheads calibrated to the paper's reported initialization breakdown
// (Section 5.1: Current Practice and Nautilus spend minutes building and
// checkpointing model graphs before any training).
//
// The simulator consumes real optimizer output: plans are produced by the
// same MAT OPT / FUSE OPT code paths over paper-scale model profiles
// (BERT-base, ResNet-50 topologies), so the *decisions* are real and only
// the clock is synthetic.
package simclock

import (
	"fmt"

	"nautilus/internal/graph"
	"nautilus/internal/opt"
	"nautilus/internal/profile"
	"nautilus/internal/storage"
)

// Overheads are the fixed-time constants of the simulation.
type Overheads struct {
	// ModelBuildSec is charged per model graph constructed and compiled
	// (original checkpoints at init, plan models at plan-checkpoint time).
	// Calibrated to the paper's §5.1 breakdown: Current Practice takes
	// 2.7 min to initialize 24 FTR-2 models ⇒ ≈6.75 s/model, of which
	// ≈0.9 s is the 440 MB checkpoint write at 500 MB/s.
	ModelBuildSec float64
	// ProfileSecPerModel is charged per model during Nautilus profiling
	// (12% of the 4.4 min Nautilus init over 24 models ⇒ ≈1.3 s).
	ProfileSecPerModel float64
	// GroupSetupSec is charged per training group per cycle: training
	// session construction, data pipeline spin-up, teardown. Fusion
	// amortizes exactly this term (plus I/O) across branches.
	GroupSetupSec float64
	// EffectiveReadBW is the bandwidth materialized reads actually see at
	// run time. The paper's Materializer leans on the OS page cache
	// ("if there is excess DRAM available, we rely on the OS disk cache",
	// Section 3), so repeated epoch reads run well above the raw 500 MB/s
	// the *optimizer* conservatively plans with. Writes still pay raw
	// disk bandwidth.
	EffectiveReadBW float64
}

// DefaultOverheads returns constants calibrated to Section 5.1.
func DefaultOverheads() Overheads {
	return Overheads{
		ModelBuildSec:      5.9,
		ProfileSecPerModel: 1.3,
		GroupSetupSec:      8.0,
		EffectiveReadBW:    3e9,
	}
}

// Schedule describes the evolving-data loop: Cycles labeling cycles of
// PerCycle records each, TrainPerCycle of which join the training split.
func PaperSchedule() Schedule {
	return Schedule{Cycles: 10, PerCycle: 500, TrainPerCycle: 400}
}

// Schedule is the labeling loop shape.
type Schedule struct {
	Cycles        int
	PerCycle      int
	TrainPerCycle int
}

// Workload is everything the simulator needs about one approach's
// execution of one workload.
type Workload struct {
	// Items is the candidate set.
	Items []opt.WorkItem
	// Groups is the optimized training plan (singletons for unfused
	// approaches).
	Groups []*opt.FusedGroup
	// MatSigs is the materialized set V (empty for Current Practice).
	MatSigs map[graph.Signature]bool
	// MatFLOPsPerRecord and MatBytesPerRecord price the materialization
	// pass: computing the chosen outputs for one record and writing them.
	MatFLOPsPerRecord int64
	MatBytesPerRecord int64
	// OptimizeSec is the measured optimizer solve time (0 for baselines).
	OptimizeSec float64
	// ProfileModels toggles the profiling charge (Nautilus-family and
	// MAT-ALL, which reuses Nautilus's machinery).
	ProfileModels bool
	// FullCheckpoints selects Current Practice's whole-model checkpoints.
	FullCheckpoints bool
}

// InitBreakdown itemizes workload initialization (Figure 6B).
type InitBreakdown struct {
	OriginalCheckpointsSec float64
	ProfileSec             float64
	OptimizeSec            float64
	PlanCheckpointsSec     float64
}

// Total returns total initialization seconds.
func (b InitBreakdown) Total() float64 {
	return b.OriginalCheckpointsSec + b.ProfileSec + b.OptimizeSec + b.PlanCheckpointsSec
}

// CycleBreakdown itemizes one model-selection cycle.
type CycleBreakdown struct {
	MaterializeSec float64
	TrainSec       float64
	CheckpointSec  float64
	OverheadSec    float64
}

// Total returns total cycle seconds.
func (c CycleBreakdown) Total() float64 {
	return c.MaterializeSec + c.TrainSec + c.CheckpointSec + c.OverheadSec
}

// Result is a simulated end-to-end run.
type Result struct {
	Init   InitBreakdown
	Cycles []CycleBreakdown
	// DiskReadBytes / DiskWriteBytes accumulate simulated *physical* disk
	// traffic (Figure 11). Materialized-feature re-reads are served by the
	// OS page cache (the set fits DRAM; it was just written), so they
	// appear under CacheReadBytes instead; checkpoint restores count as
	// disk reads because Current Practice's 10+ GB of full checkpoints per
	// cycle thrash the cache.
	DiskReadBytes  int64
	DiskWriteBytes int64
	CacheReadBytes int64
	// ComputeSec accumulates pure compute time, for utilization reports.
	ComputeSec float64
}

// TotalSec returns the full model-selection time (init + all cycles).
func (r *Result) TotalSec() float64 {
	t := r.Init.Total()
	for _, c := range r.Cycles {
		t += c.Total()
	}
	return t
}

// Utilization returns the fraction of total time spent computing — the
// simulator's analogue of average GPU utilization (Figure 11).
func (r *Result) Utilization() float64 {
	t := r.TotalSec()
	//lint:ignore floateq guard against dividing by an exactly-zero simulated total
	if t == 0 {
		return 0
	}
	return r.ComputeSec / t
}

// Simulate runs the cost clock over the workload.
func Simulate(w Workload, sched Schedule, hw profile.Hardware, oh Overheads) (*Result, error) {
	if len(w.Groups) == 0 {
		return nil, fmt.Errorf("simclock: no training groups")
	}
	res := &Result{}

	// ---- Initialization ----
	for _, it := range w.Items {
		full := storage.CheckpointSizeBytes(it.Model, storage.CheckpointOptions{})
		res.Init.OriginalCheckpointsSec += oh.ModelBuildSec + float64(full)/hw.DiskThroughput
		res.DiskWriteBytes += full
	}
	if w.ProfileModels {
		res.Init.ProfileSec = oh.ProfileSecPerModel * float64(len(w.Items))
		res.Init.OptimizeSec = w.OptimizeSec
		for _, g := range w.Groups {
			planModel, _, err := opt.BuildPlanModel(g.Plan)
			if err != nil {
				return nil, err
			}
			bytes := storage.CheckpointSizeBytes(planModel, storage.CheckpointOptions{TrainableOnly: true})
			res.Init.PlanCheckpointsSec += oh.ModelBuildSec + float64(bytes)/hw.DiskThroughput
			res.DiskWriteBytes += bytes
		}
	}

	// Per-group constants.
	type gcost struct {
		computeSec float64 // per train record per epoch
		loadSec    float64 // per record (train or valid): features + dataset
		forwardSec float64 // per valid record
		ckptBytes  int64
		epochs     int
		readBytes  int64 // bytes read per record: features + dataset
	}
	readBW := oh.EffectiveReadBW
	if readBW <= 0 {
		readBW = hw.DiskThroughput
	}
	gcosts := make([]gcost, len(w.Groups))
	for i, g := range w.Groups {
		planModel, _, err := opt.BuildPlanModel(g.Plan)
		if err != nil {
			return nil, err
		}
		ckptOpts := storage.CheckpointOptions{TrainableOnly: !w.FullCheckpoints}
		readBytes := g.Plan.LoadBytesPerRecord() + g.Plan.DatasetBytesPerRecord()
		gcosts[i] = gcost{
			computeSec: hw.Seconds(g.Plan.ComputeFLOPsPerRecord()),
			loadSec:    float64(readBytes) / readBW,
			forwardSec: hw.Seconds(g.Plan.ForwardFLOPsPerRecord()),
			ckptBytes:  storage.CheckpointSizeBytes(planModel, ckptOpts),
			epochs:     g.Epochs(),
			readBytes:  readBytes,
		}
	}

	matSec := hw.Seconds(w.MatFLOPsPerRecord) + float64(w.MatBytesPerRecord)/hw.DiskThroughput

	// ---- Cycles ----
	for k := 1; k <= sched.Cycles; k++ {
		var c CycleBreakdown
		trainN := k * sched.TrainPerCycle
		validN := k * (sched.PerCycle - sched.TrainPerCycle)
		delta := sched.PerCycle // new records this cycle (train + valid)

		if len(w.MatSigs) > 0 {
			c.MaterializeSec = float64(delta) * matSec
			res.ComputeSec += float64(delta) * hw.Seconds(w.MatFLOPsPerRecord)
			res.DiskWriteBytes += int64(delta) * w.MatBytesPerRecord
		}
		for i := range w.Groups {
			gc := gcosts[i]
			train := float64(gc.epochs) * float64(trainN) * (gc.computeSec + gc.loadSec)
			valid := float64(validN) * (gc.forwardSec + gc.loadSec)
			c.TrainSec += train + valid
			res.ComputeSec += float64(gc.epochs)*float64(trainN)*gc.computeSec + float64(validN)*gc.forwardSec
			res.CacheReadBytes += int64(gc.epochs)*int64(trainN)*gc.readBytes + int64(validN)*gc.readBytes
			// Restoring the group's checkpoint to start the training
			// session reads it back (Current Practice re-reads whole
			// original models every cycle); writing the trained result
			// pays raw disk bandwidth.
			c.CheckpointSec += float64(gc.ckptBytes)/readBW + float64(gc.ckptBytes)/hw.DiskThroughput
			res.DiskReadBytes += gc.ckptBytes
			res.DiskWriteBytes += gc.ckptBytes
		}
		c.OverheadSec = oh.GroupSetupSec * float64(len(w.Groups))
		res.Cycles = append(res.Cycles, c)
	}
	return res, nil
}
