package simclock

import (
	"fmt"
	"testing"

	"nautilus/internal/graph"
	"nautilus/internal/layers"
	"nautilus/internal/mmg"
	"nautilus/internal/opt"
	"nautilus/internal/profile"
)

// simWorkload builds a 2-model workload with plans for the given approach
// behaviour.
func simWorkload(t *testing.T, materialize bool) Workload {
	t.Helper()
	// A disk fast enough that materializing the toy trunk pays off.
	hw := profile.Hardware{FLOPSThroughput: 6e12, DiskThroughput: 6e12, WorkspaceBytes: 1 << 30}
	var items []opt.WorkItem
	var groups []*opt.FusedGroup
	shared := layers.NewDense(8192, 256, layers.ActTanh, 3)
	var sigs map[graph.Signature]bool
	for i := 0; i < 2; i++ {
		m := graph.NewModel(fmt.Sprintf("m%d", i))
		in := m.AddInput("in", 8192)
		f := m.AddNode("f", shared, in)
		h := m.AddNode("h", layers.NewDense(256, 4, layers.ActNone, int64(10+i)), f)
		h.Trainable = true
		m.SetOutputs(h)
		prof, err := profile.Profile(m, hw)
		if err != nil {
			t.Fatal(err)
		}
		it := opt.WorkItem{Model: m, Prof: prof, Epochs: 2, BatchSize: 16, LR: 1e-3}
		items = append(items, it)
		mmSingle, err := mmg.Build(m)
		if err != nil {
			t.Fatal(err)
		}
		mprof, err := profile.Profile(mmSingle.Graph, hw)
		if err != nil {
			t.Fatal(err)
		}
		if materialize {
			if sigs == nil {
				sigs = map[graph.Signature]bool{mprof.Sigs[mmSingle.NodeOf[m][f]]: true}
			}
			plan, err := opt.SolveReusePlan(mprof, sigs)
			if err != nil {
				t.Fatal(err)
			}
			groups = append(groups, &opt.FusedGroup{Items: []opt.WorkItem{it}, MM: mmSingle, Plan: plan})
		} else {
			groups = append(groups, &opt.FusedGroup{Items: []opt.WorkItem{it}, MM: mmSingle, Plan: opt.CurrentPracticePlan(mprof)})
		}
	}
	w := Workload{Items: items, Groups: groups, FullCheckpoints: !materialize, ProfileModels: materialize}
	if materialize {
		w.MatSigs = sigs
		w.MatFLOPsPerRecord = 1000
		w.MatBytesPerRecord = 1024
	}
	return w
}

var testSched = Schedule{Cycles: 3, PerCycle: 100, TrainPerCycle: 80}

func TestSimulateBasicInvariants(t *testing.T) {
	w := simWorkload(t, false)
	res, err := Simulate(w, testSched, profile.DefaultHardware(), DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cycles) != 3 {
		t.Fatalf("cycles = %d", len(res.Cycles))
	}
	if res.TotalSec() <= res.Init.Total() {
		t.Error("total must exceed init")
	}
	// Cycles grow with accumulated data.
	for i := 1; i < len(res.Cycles); i++ {
		if res.Cycles[i].TrainSec <= res.Cycles[i-1].TrainSec {
			t.Error("training time must grow with snapshot size")
		}
	}
	// Current Practice: no materialization time.
	for _, c := range res.Cycles {
		if c.MaterializeSec != 0 {
			t.Error("current practice must not materialize")
		}
	}
	if u := res.Utilization(); u <= 0 || u >= 1 {
		t.Errorf("utilization %v out of (0,1)", u)
	}
}

func TestSimulateMaterializationCharged(t *testing.T) {
	w := simWorkload(t, true)
	res, err := Simulate(w, testSched, profile.DefaultHardware(), DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cycles {
		if c.MaterializeSec <= 0 {
			t.Error("materializing approach must pay materialization time")
		}
	}
	if res.Init.ProfileSec <= 0 || res.Init.PlanCheckpointsSec <= 0 {
		t.Error("nautilus-style init must include profiling and plan checkpoints")
	}
	// Feature reads are cache reads, not disk reads.
	if res.CacheReadBytes <= 0 {
		t.Error("materialized loads must register as cache reads")
	}
}

func TestSimulateNautilusBeatsCurrentPractice(t *testing.T) {
	cp, err := Simulate(simWorkload(t, false), testSched, profile.DefaultHardware(), DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	nt, err := Simulate(simWorkload(t, true), testSched, profile.DefaultHardware(), DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	var cpTrain, ntTrain float64
	for i := range cp.Cycles {
		cpTrain += cp.Cycles[i].TrainSec
		ntTrain += nt.Cycles[i].TrainSec
	}
	if ntTrain >= cpTrain {
		t.Errorf("materialized training %v not below current practice %v", ntTrain, cpTrain)
	}
	// Trainable-only checkpoints write less.
	if nt.DiskWriteBytes >= cp.DiskWriteBytes {
		t.Errorf("nautilus wrote %d, current practice %d", nt.DiskWriteBytes, cp.DiskWriteBytes)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a, err := Simulate(simWorkload(t, true), testSched, profile.DefaultHardware(), DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(simWorkload(t, true), testSched, profile.DefaultHardware(), DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalSec() != b.TotalSec() {
		t.Error("simulation must be deterministic")
	}
}

func TestSimulateEmptyGroupsRejected(t *testing.T) {
	if _, err := Simulate(Workload{}, testSched, profile.DefaultHardware(), DefaultOverheads()); err == nil {
		t.Error("empty workload should error")
	}
}

func TestPaperSchedule(t *testing.T) {
	s := PaperSchedule()
	if s.Cycles != 10 || s.PerCycle != 500 || s.TrainPerCycle != 400 {
		t.Errorf("paper schedule %+v", s)
	}
}

func TestOverheadsScaleInit(t *testing.T) {
	w := simWorkload(t, false)
	small, _ := Simulate(w, testSched, profile.DefaultHardware(), Overheads{ModelBuildSec: 1, EffectiveReadBW: 3e9})
	big, _ := Simulate(w, testSched, profile.DefaultHardware(), Overheads{ModelBuildSec: 10, EffectiveReadBW: 3e9})
	if big.Init.OriginalCheckpointsSec <= small.Init.OriginalCheckpointsSec {
		t.Error("init must scale with model build overhead")
	}
}
