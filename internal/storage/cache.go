package storage

import (
	"container/list"
	"sync"
)

// rowCache is an LRU cache of materialized rows, standing in for the OS
// page cache the paper's Materializer relies on ("if there is excess DRAM
// available, we rely on the OS disk cache", Section 3). With it, repeated
// epoch reads of materialized features hit DRAM and only cold rows count
// as physical disk reads — the same accounting the cost-clock simulator
// uses.
type rowCache struct {
	mu       sync.Mutex
	maxBytes int64
	used     int64
	ll       *list.List // front = most recent
	items    map[rowKey]*list.Element

	hits, misses int64
}

type rowKey struct {
	key string
	row int
}

type rowEntry struct {
	k    rowKey
	data []float32
}

func newRowCache(maxBytes int64) *rowCache {
	return &rowCache{maxBytes: maxBytes, ll: list.New(), items: map[rowKey]*list.Element{}}
}

// get returns the cached row and moves it to the front.
func (c *rowCache) get(key string, row int) ([]float32, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[rowKey{key, row}]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*rowEntry).data, true
}

// put inserts a row, evicting least-recently-used rows beyond capacity.
// The slice is stored as-is; callers must not mutate it afterwards.
func (c *rowCache) put(key string, row int, data []float32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := rowKey{key, row}
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*rowEntry).data = data
		return
	}
	bytes := int64(len(data)) * 4
	if bytes > c.maxBytes {
		return // row larger than the whole cache
	}
	el := c.ll.PushFront(&rowEntry{k: k, data: data})
	c.items[k] = el
	c.used += bytes
	for c.used > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*rowEntry)
		c.ll.Remove(back)
		delete(c.items, e.k)
		c.used -= int64(len(e.data)) * 4
	}
}

// invalidate drops every cached row of a key (after Delete).
func (c *rowCache) invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*rowEntry)
		if e.k.key == key {
			c.ll.Remove(el)
			delete(c.items, e.k)
			c.used -= int64(len(e.data)) * 4
		}
		el = next
	}
}

// stats returns hit/miss counts.
func (c *rowCache) stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
