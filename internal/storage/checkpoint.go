package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"

	"nautilus/internal/graph"
	"nautilus/internal/tensor"
)

// checkpointMagic identifies checkpoint files.
const checkpointMagic = "NCKP"

// archNode is the serialized form of one model node.
type archNode struct {
	Name      string         `json:"name"`
	Type      string         `json:"type"`
	Config    map[string]any `json:"config"`
	Parents   []string       `json:"parents,omitempty"`
	Trainable bool           `json:"trainable,omitempty"`
}

// paramEntry locates one parameter blob inside the checkpoint.
type paramEntry struct {
	Node   string `json:"node"`
	Param  string `json:"param"`
	Shape  []int  `json:"shape"`
	Offset int64  `json:"offset"`
}

// checkpointHeader is the JSON header of a checkpoint file.
type checkpointHeader struct {
	Model   string       `json:"model"`
	Nodes   []archNode   `json:"nodes"`
	Outputs []string     `json:"outputs"`
	Params  []paramEntry `json:"params"`
	// TrainableOnly marks checkpoints that store only trainable weights;
	// they can only be restored into an existing model.
	TrainableOnly bool `json:"trainable_only,omitempty"`
}

// CheckpointOptions controls what SaveModel writes.
type CheckpointOptions struct {
	// TrainableOnly stores only the trainable parameters. Nautilus
	// checkpoints optimized plan models this way — frozen parameters are
	// reproducible from the hub and need no repeated writes (the disk-write
	// saving reported in Figure 11).
	TrainableOnly bool
}

// SaveModel writes the model architecture and weights to path. counters may
// be nil.
func SaveModel(path string, m *graph.Model, opts CheckpointOptions, counters *Counters) error {
	hdr := checkpointHeader{Model: m.Name, TrainableOnly: opts.TrainableOnly}
	for _, o := range m.Outputs {
		hdr.Outputs = append(hdr.Outputs, o.Name)
	}

	trainSet := map[*graph.Param]bool{}
	for _, p := range m.TrainableParams() {
		trainSet[p] = true
	}

	type blob struct {
		entry paramEntry
		data  *tensor.Tensor
	}
	var blobs []blob
	var offset int64
	for _, n := range m.Nodes() {
		an := archNode{Name: n.Name, Type: n.Layer.Type(), Config: n.Layer.Config(), Trainable: n.Trainable}
		for _, p := range n.Parents {
			an.Parents = append(an.Parents, p.Name)
		}
		hdr.Nodes = append(hdr.Nodes, an)
		for _, p := range n.Layer.Params() {
			if opts.TrainableOnly && !trainSet[p] {
				continue
			}
			e := paramEntry{Node: n.Name, Param: p.Name, Shape: p.Shape, Offset: offset}
			blobs = append(blobs, blob{entry: e, data: p.Tensor()})
			offset += p.Bytes()
			hdr.Params = append(hdr.Params, e)
		}
	}

	hb, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("storage: marshal checkpoint header: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("storage: create checkpoint: %w", err)
	}
	defer f.Close()

	pre := make([]byte, 12)
	copy(pre, checkpointMagic)
	binary.LittleEndian.PutUint64(pre[4:], uint64(len(hb)))
	if _, err := f.Write(pre); err != nil {
		return err
	}
	if _, err := f.Write(hb); err != nil {
		return err
	}
	var written int64 = int64(len(pre) + len(hb))
	for _, b := range blobs {
		buf := make([]byte, 4*b.data.Len())
		for i, v := range b.data.Data() {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		if _, err := f.Write(buf); err != nil {
			return err
		}
		written += int64(len(buf))
	}
	counters.AddWrite(written)
	return nil
}

// readCheckpoint parses path into its header and the byte offset where
// parameter data begins.
func readCheckpoint(path string) (*checkpointHeader, *os.File, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("storage: open checkpoint: %w", err)
	}
	pre := make([]byte, 12)
	if _, err := f.ReadAt(pre, 0); err != nil {
		_ = f.Close() // read-side close on the error path
		return nil, nil, 0, err
	}
	if string(pre[:4]) != checkpointMagic {
		_ = f.Close() // read-side close on the error path
		return nil, nil, 0, fmt.Errorf("storage: %s is not a checkpoint", path)
	}
	hlen := int64(binary.LittleEndian.Uint64(pre[4:]))
	hb := make([]byte, hlen)
	if _, err := f.ReadAt(hb, 12); err != nil {
		_ = f.Close() // read-side close on the error path
		return nil, nil, 0, err
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(hb, &hdr); err != nil {
		_ = f.Close() // read-side close on the error path
		return nil, nil, 0, fmt.Errorf("storage: parse checkpoint header: %w", err)
	}
	return &hdr, f, 12 + hlen, nil
}

// LoadModel restores a full checkpoint into a new model. Trainable-only
// checkpoints cannot be loaded this way (frozen weights are absent); use
// LoadParamsInto with a freshly rebuilt model instead.
func LoadModel(path string, counters *Counters) (*graph.Model, error) {
	hdr, f, base, err := readCheckpoint(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if hdr.TrainableOnly {
		return nil, fmt.Errorf("storage: %s is a trainable-only checkpoint; use LoadParamsInto", path)
	}
	m := graph.NewModel(hdr.Model)
	for _, an := range hdr.Nodes {
		layer, err := graph.NewLayerFromConfig(an.Type, an.Config)
		if err != nil {
			return nil, fmt.Errorf("storage: node %q: %w", an.Name, err)
		}
		parents := make([]*graph.Node, len(an.Parents))
		for i, pn := range an.Parents {
			parents[i] = m.Node(pn)
			if parents[i] == nil {
				return nil, fmt.Errorf("storage: node %q references unknown parent %q", an.Name, pn)
			}
		}
		n := m.AddNode(an.Name, layer, parents...)
		n.Trainable = an.Trainable
	}
	var outs []*graph.Node
	for _, o := range hdr.Outputs {
		n := m.Node(o)
		if n == nil {
			return nil, fmt.Errorf("storage: unknown output %q", o)
		}
		outs = append(outs, n)
	}
	m.SetOutputs(outs...)
	if err := loadParams(hdr, f, base, m, counters); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadParamsInto restores the parameters recorded in the checkpoint into an
// existing model with matching node and parameter names.
func LoadParamsInto(path string, m *graph.Model, counters *Counters) error {
	hdr, f, base, err := readCheckpoint(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return loadParams(hdr, f, base, m, counters)
}

func loadParams(hdr *checkpointHeader, f *os.File, base int64, m *graph.Model, counters *Counters) error {
	byName := map[string]*graph.Param{}
	for _, n := range m.Nodes() {
		for _, p := range n.Layer.Params() {
			byName[n.Name+"\x00"+p.Name] = p
		}
	}
	var read int64
	for _, e := range hdr.Params {
		p := byName[e.Node+"\x00"+e.Param]
		if p == nil {
			return fmt.Errorf("storage: checkpoint param %s/%s not present in model", e.Node, e.Param)
		}
		n := tensor.NumElems(e.Shape)
		buf := make([]byte, 4*n)
		if _, err := f.ReadAt(buf, base+e.Offset); err != nil {
			return fmt.Errorf("storage: read param %s/%s: %w", e.Node, e.Param, err)
		}
		t := tensor.New(e.Shape...)
		for i := range t.Data() {
			t.Data()[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		p.SetData(t)
		read += int64(len(buf))
	}
	counters.AddRead(read)
	return nil
}

// CheckpointSizeBytes estimates a model's checkpoint size without writing
// it: header estimate plus parameter bytes (all params, or trainable only).
func CheckpointSizeBytes(m *graph.Model, opts CheckpointOptions) int64 {
	var total int64 = 4096 // header estimate
	if opts.TrainableOnly {
		for _, p := range m.TrainableParams() {
			total += p.Bytes()
		}
		return total
	}
	for _, p := range m.AllParams() {
		total += p.Bytes()
	}
	return total
}
