// Package storage implements Nautilus's on-disk artifact stores: a columnar
// tensor store for materialized intermediate layer outputs (supporting the
// incremental appends of Section 4.2.3) and a model checkpoint store
// (architecture + weights, optionally trainable-only as the Nautilus
// trainer writes). All stores meter their I/O so experiments can report
// cumulative disk reads/writes (Figure 11).
package storage

import "sync/atomic"

// Counters meters byte-level disk traffic. Stores sharing one Counters
// instance aggregate into a single account.
type Counters struct {
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	reads        atomic.Int64
	writes       atomic.Int64
}

// AddRead records a read of n bytes.
func (c *Counters) AddRead(n int64) {
	if c == nil {
		return
	}
	c.bytesRead.Add(n)
	c.reads.Add(1)
}

// AddWrite records a write of n bytes.
func (c *Counters) AddWrite(n int64) {
	if c == nil {
		return
	}
	c.bytesWritten.Add(n)
	c.writes.Add(1)
}

// BytesRead returns cumulative bytes read.
func (c *Counters) BytesRead() int64 { return c.bytesRead.Load() }

// BytesWritten returns cumulative bytes written.
func (c *Counters) BytesWritten() int64 { return c.bytesWritten.Load() }

// Reads returns the number of read operations.
func (c *Counters) Reads() int64 { return c.reads.Load() }

// Writes returns the number of write operations.
func (c *Counters) Writes() int64 { return c.writes.Load() }

// Merge accumulates o's totals into c. Either side may be nil.
func (c *Counters) Merge(o *Counters) {
	if c == nil || o == nil {
		return
	}
	c.bytesRead.Add(o.bytesRead.Load())
	c.bytesWritten.Add(o.bytesWritten.Load())
	c.reads.Add(o.reads.Load())
	c.writes.Add(o.writes.Load())
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	c.bytesRead.Store(0)
	c.bytesWritten.Store(0)
	c.reads.Store(0)
	c.writes.Store(0)
}
