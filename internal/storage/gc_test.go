package storage

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"nautilus/internal/tensor"
)

func TestTensorStoreKeysSorted(t *testing.T) {
	s, _ := newStore(t)
	rng := rand.New(rand.NewSource(21))
	for _, key := range []string{"c", "a", "b"} {
		if err := s.Append(key, tensor.RandNormal(rng, 1, 2, 3)); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v (sorted)", keys, want)
		}
	}
}

func TestTensorStoreGC(t *testing.T) {
	s, _ := newStore(t)
	rng := rand.New(rand.NewSource(22))
	for _, key := range []string{"keepme", "gone1", "gone2"} {
		if err := s.Append(key, tensor.RandNormal(rng, 1, 4, 3)); err != nil {
			t.Fatal(err)
		}
	}
	wantFreed := s.SizeBytes("gone1") + s.SizeBytes("gone2")

	deleted, freed, err := s.GC(func(key string) bool { return key == "keepme" })
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 2 || deleted[0] != "gone1" || deleted[1] != "gone2" {
		t.Errorf("deleted = %v, want [gone1 gone2]", deleted)
	}
	if freed != wantFreed {
		t.Errorf("freed = %d, want %d", freed, wantFreed)
	}
	for _, key := range deleted {
		if _, err := os.Stat(filepath.Join(s.Dir(), key+".nts")); !os.IsNotExist(err) {
			t.Errorf("%s.nts survived GC (stat err %v)", key, err)
		}
	}
	if n, err := s.Count("keepme"); err != nil || n != 4 {
		t.Errorf("kept artifact count = %d (%v), want 4", n, err)
	}

	// Collected keys are fully released: a fresh append recreates them.
	if err := s.Append("gone1", tensor.RandNormal(rng, 1, 2, 3)); err != nil {
		t.Fatalf("append to GC'd key: %v", err)
	}
	if n, err := s.Count("gone1"); err != nil || n != 2 {
		t.Errorf("recreated artifact count = %d (%v), want 2", n, err)
	}

	// Keep-all GC is a no-op.
	deleted, freed, err = s.GC(func(string) bool { return true })
	if err != nil || len(deleted) != 0 || freed != 0 {
		t.Errorf("keep-all GC = %v, %d, %v; want no-op", deleted, freed, err)
	}
}
