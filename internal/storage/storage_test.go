package storage

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"nautilus/internal/graph"
	"nautilus/internal/layers"
	"nautilus/internal/tensor"
)

func newStore(t *testing.T) (*TensorStore, *Counters) {
	t.Helper()
	c := &Counters{}
	s, err := NewTensorStore(t.TempDir(), c)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, c
}

func TestTensorStoreAppendReadRoundTrip(t *testing.T) {
	s, _ := newStore(t)
	rng := rand.New(rand.NewSource(1))
	a := tensor.RandNormal(rng, 1, 5, 3, 2)
	if err := s.Append("k1", a); err != nil {
		t.Fatal(err)
	}
	n, err := s.Count("k1")
	if err != nil || n != 5 {
		t.Fatalf("count = %d (%v), want 5", n, err)
	}
	got, err := s.ReadRange("k1", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !got.AllClose(a, 0) {
		t.Error("read-back differs from written data")
	}
	shape, err := s.RecordShape("k1")
	if err != nil || !tensor.ShapeEq(shape, []int{3, 2}) {
		t.Errorf("record shape = %v (%v)", shape, err)
	}
}

func TestTensorStoreIncrementalAppend(t *testing.T) {
	s, _ := newStore(t)
	rng := rand.New(rand.NewSource(2))
	a := tensor.RandNormal(rng, 1, 3, 4)
	b := tensor.RandNormal(rng, 1, 2, 4)
	if err := s.Append("k", a); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("k", b); err != nil {
		t.Fatal(err)
	}
	n, _ := s.Count("k")
	if n != 5 {
		t.Fatalf("count = %d, want 5", n)
	}
	// The appended records land after the first batch.
	got, err := s.ReadRange("k", 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !got.AllClose(b, 0) {
		t.Error("appended records differ")
	}
}

func TestTensorStoreShapeMismatchRejected(t *testing.T) {
	s, _ := newStore(t)
	if err := s.Append("k", tensor.New(2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("k", tensor.New(2, 4)); err == nil {
		t.Error("mismatched record shape must be rejected")
	}
}

func TestTensorStoreReadRowsGather(t *testing.T) {
	s, _ := newStore(t)
	x := tensor.FromSlice([]float32{0, 0, 1, 1, 2, 2, 3, 3}, 4, 2)
	if err := s.Append("k", x); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadRows("k", []int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0, 0) != 3 || got.At(1, 0) != 1 {
		t.Errorf("gather = %v", got.Data())
	}
}

func TestTensorStoreCountersAndSizes(t *testing.T) {
	s, c := newStore(t)
	x := tensor.New(10, 8) // 320 data bytes
	if err := s.Append("k", x); err != nil {
		t.Fatal(err)
	}
	if c.BytesWritten() < 320 {
		t.Errorf("bytes written = %d, want >= 320", c.BytesWritten())
	}
	if _, err := s.ReadRange("k", 0, 10); err != nil {
		t.Fatal(err)
	}
	if c.BytesRead() != 320 {
		t.Errorf("bytes read = %d, want 320", c.BytesRead())
	}
	if s.SizeBytes("k") < 320 || s.TotalBytes() < 320 {
		t.Error("size accounting wrong")
	}
	c.Reset()
	if c.BytesRead() != 0 || c.Writes() != 0 {
		t.Error("reset failed")
	}
}

func TestTensorStoreDelete(t *testing.T) {
	s, _ := newStore(t)
	if err := s.Append("k", tensor.New(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Count("k"); n != 0 {
		t.Errorf("count after delete = %d", n)
	}
	if err := s.Delete("never_existed"); err != nil {
		t.Errorf("deleting a missing key should be a no-op, got %v", err)
	}
}

func TestTensorStoreEmptyKeyCount(t *testing.T) {
	s, _ := newStore(t)
	if n, err := s.Count("fresh"); err != nil || n != 0 {
		t.Errorf("fresh key count = %d (%v)", n, err)
	}
	if _, err := s.ReadRows("fresh2", []int{0}); err == nil {
		t.Error("reading an empty key should error")
	}
}

// buildTestModel builds a small frozen-trunk + trainable-head model.
func buildTestModel() *graph.Model {
	m := graph.NewModel("ckpt-test")
	in := m.AddInput("in", 4)
	d1 := m.AddNode("d1", layers.NewDense(4, 6, layers.ActTanh, 11), in)
	_ = d1
	d2 := m.AddNode("d2", layers.NewDense(6, 3, layers.ActNone, 12), d1)
	d2.Trainable = true
	m.SetOutputs(d2)
	return m
}

func TestCheckpointFullRoundTrip(t *testing.T) {
	m := buildTestModel()
	// Mutate a weight so restored values differ from seed init.
	m.Node("d2").Layer.Params()[0].Tensor().Data()[0] = 42
	path := filepath.Join(t.TempDir(), "model.nckp")
	c := &Counters{}
	if err := SaveModel(path, m, CheckpointOptions{}, c); err != nil {
		t.Fatal(err)
	}
	if c.BytesWritten() == 0 {
		t.Error("checkpoint write not metered")
	}
	restored, err := LoadModel(path, c)
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumNodes() != m.NumNodes() {
		t.Fatalf("restored %d nodes, want %d", restored.NumNodes(), m.NumNodes())
	}
	if got := restored.Node("d2").Layer.Params()[0].Tensor().Data()[0]; got != 42 {
		t.Errorf("restored weight = %v, want 42", got)
	}
	if !restored.Node("d2").Trainable || restored.Node("d1").Trainable {
		t.Error("trainability flags lost")
	}
	// Behavioural equivalence: same forward outputs.
	x := tensor.FromSlice([]float32{1, -1, 0.5, 2}, 1, 4)
	t1, _ := m.Forward(map[string]*tensor.Tensor{"in": x}, false)
	t2, _ := restored.Forward(map[string]*tensor.Tensor{"in": x}, false)
	if !t1.Output(m.Outputs[0]).AllClose(t2.Output(restored.Outputs[0]), 1e-6) {
		t.Error("restored model computes different outputs")
	}
}

func TestCheckpointTrainableOnly(t *testing.T) {
	m := buildTestModel()
	path := filepath.Join(t.TempDir(), "trainable.nckp")
	if err := SaveModel(path, m, CheckpointOptions{TrainableOnly: true}, nil); err != nil {
		t.Fatal(err)
	}
	// Full load must refuse.
	if _, err := LoadModel(path, nil); err == nil {
		t.Error("loading a trainable-only checkpoint as full model should error")
	}
	// Restoring into a rebuilt model works and only touches the head.
	m.Node("d2").Layer.Params()[0].Tensor().Data()[0] = 7
	if err := SaveModel(path, m, CheckpointOptions{TrainableOnly: true}, nil); err != nil {
		t.Fatal(err)
	}
	fresh := buildTestModel()
	if err := LoadParamsInto(path, fresh, nil); err != nil {
		t.Fatal(err)
	}
	if got := fresh.Node("d2").Layer.Params()[0].Tensor().Data()[0]; got != 7 {
		t.Errorf("restored trainable weight = %v, want 7", got)
	}
}

func TestCheckpointSizeEstimates(t *testing.T) {
	m := buildTestModel()
	full := CheckpointSizeBytes(m, CheckpointOptions{})
	trainOnly := CheckpointSizeBytes(m, CheckpointOptions{TrainableOnly: true})
	if trainOnly >= full {
		t.Errorf("trainable-only size %d should be < full %d", trainOnly, full)
	}
	// d2: 6*3+3 params = 21 floats = 84 bytes + header.
	if trainOnly != 4096+84 {
		t.Errorf("trainable-only = %d, want %d", trainOnly, 4096+84)
	}
}

func TestCheckpointCompositeModelRoundTrip(t *testing.T) {
	// Composite layers (transformer block) serialize via their config and
	// restore with identical weights thanks to seed-derived params.
	m := graph.NewModel("composite")
	in := m.AddInput("ids", 4, 8)
	blk := m.AddNode("blk", layers.NewTransformerBlock(layers.TransformerBlockConfig{
		Seq: 4, Dim: 8, Heads: 2, FFN: 16, Seed: 5,
	}), in)
	_ = blk
	head := m.AddNode("head", layers.NewDense(8, 2, layers.ActNone, 6), blk)
	head.Trainable = true
	m.SetOutputs(head)

	path := filepath.Join(t.TempDir(), "composite.nckp")
	if err := SaveModel(path, m, CheckpointOptions{}, nil); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadModel(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	x := tensor.RandNormal(rng, 1, 2, 4, 8)
	t1, _ := m.Forward(map[string]*tensor.Tensor{"ids": x}, false)
	t2, _ := restored.Forward(map[string]*tensor.Tensor{"ids": x}, false)
	if !t1.Output(m.Outputs[0]).AllClose(t2.Output(restored.Outputs[0]), 1e-5) {
		t.Error("restored composite model computes different outputs")
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := writeFile(path, []byte("not a checkpoint at all")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(path, nil); err == nil {
		t.Error("garbage file should fail to load")
	}
}

func writeFile(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}

// TestTensorStoreQuickRoundTrip: random shapes and values survive an
// append/read cycle bit-exactly.
func TestTensorStoreQuickRoundTrip(t *testing.T) {
	s, _ := newStore(t)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		key := fmt.Sprintf("k%d", seed&0xffff)
		n := 1 + rng.Intn(6)
		shape := append([]int{n}, 1+rng.Intn(4), 1+rng.Intn(4))
		x := tensor.RandNormal(rng, 2, shape...)
		if err := s.Append(key, x); err != nil {
			return false
		}
		cnt, err := s.Count(key)
		if err != nil || cnt < n {
			return false
		}
		got, err := s.ReadRange(key, cnt-n, cnt)
		if err != nil {
			return false
		}
		return got.AllClose(x, 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRowCacheHitsAndEviction(t *testing.T) {
	s, c := newStore(t)
	s.EnableCache(10 * 8 * 4) // 10 rows of 8 floats
	x := tensor.New(20, 8)
	for i := range x.Data() {
		x.Data()[i] = float32(i)
	}
	if err := s.Append("k", x); err != nil {
		t.Fatal(err)
	}
	// Cold read of rows 0-4: all misses, disk bytes counted.
	if _, err := s.ReadRange("k", 0, 5); err != nil {
		t.Fatal(err)
	}
	cold := c.BytesRead()
	if cold != 5*8*4 {
		t.Fatalf("cold bytes = %d, want %d", cold, 5*8*4)
	}
	// Warm re-read: all hits, no new disk bytes, values identical.
	got, err := s.ReadRange("k", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c.BytesRead() != cold {
		t.Errorf("warm read hit disk: %d vs %d", c.BytesRead(), cold)
	}
	if got.At(2, 3) != x.At(2, 3) {
		t.Error("cached values differ")
	}
	hits, misses := s.CacheStats()
	if hits != 5 || misses != 5 {
		t.Errorf("hits/misses = %d/%d, want 5/5", hits, misses)
	}
	// Reading 12 more rows overflows the 10-row capacity: earliest rows
	// evict; a re-read of row 0 must miss again.
	if _, err := s.ReadRange("k", 5, 17); err != nil {
		t.Fatal(err)
	}
	before := c.BytesRead()
	if _, err := s.ReadRows("k", []int{0}); err != nil {
		t.Fatal(err)
	}
	if c.BytesRead() == before {
		t.Error("evicted row should re-read from disk")
	}
}

func TestRowCacheInvalidatedOnDelete(t *testing.T) {
	s, _ := newStore(t)
	s.EnableCache(1 << 20)
	if err := s.Append("k", tensor.New(2, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadRange("k", 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	// Re-create the key with different data; reads must not see stale
	// cache entries.
	y := tensor.New(2, 4)
	y.Fill(9)
	if err := s.Append("k", y); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadRange("k", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0, 0) != 9 {
		t.Error("stale cache entry survived delete")
	}
}

func TestRowCacheOversizeRowBypasses(t *testing.T) {
	s, _ := newStore(t)
	s.EnableCache(8) // tiny: a 4-float row (16B) cannot fit
	if err := s.Append("k", tensor.New(1, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadRange("k", 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadRange("k", 0, 1); err != nil {
		t.Fatal(err)
	}
	hits, _ := s.CacheStats()
	if hits != 0 {
		t.Error("oversize rows must not be cached")
	}
}
