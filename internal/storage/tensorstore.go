package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"nautilus/internal/obs"
	"nautilus/internal/tensor"
)

// tensorStoreMagic identifies materialized-output files.
const tensorStoreMagic = "NTS1"

// TensorStore persists materialized layer outputs on disk, one file per
// key (the producing expression's signature). Records append incrementally
// as new labeled data arrives; reads fetch row ranges or gathered batches.
//
// File layout: magic, uint32 rank, rank×uint32 record dims, then float32
// record data in row-major order. The record count is derived from the file
// size, so appends are crash-consistent at record granularity.
type TensorStore struct {
	dir      string
	counters *Counters
	cache    *rowCache
	obs      *obs.Tracer

	mu    sync.Mutex
	files map[string]*os.File
}

// SetObs attaches an observability tracer: reads and writes emit spans
// with byte counts plus registry counters. nil detaches (the default).
func (s *TensorStore) SetObs(tr *obs.Tracer) {
	s.mu.Lock()
	s.obs = tr
	s.mu.Unlock()
}

// NewTensorStore opens (creating if needed) a store rooted at dir. counters
// may be nil.
func NewTensorStore(dir string, counters *Counters) (*TensorStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create store dir: %w", err)
	}
	return &TensorStore{dir: dir, counters: counters, files: map[string]*os.File{}}, nil
}

// EnableCache attaches an LRU row cache of the given capacity, emulating
// the OS page cache: repeated epoch reads of materialized rows hit DRAM
// and only cold reads count as physical disk traffic.
func (s *TensorStore) EnableCache(maxBytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache = newRowCache(maxBytes)
}

// CacheStats returns cache hits and misses (zero when no cache attached).
func (s *TensorStore) CacheStats() (hits, misses int64) {
	s.mu.Lock()
	c := s.cache
	s.mu.Unlock()
	if c == nil {
		return 0, 0
	}
	return c.stats()
}

// Dir returns the store's root directory.
func (s *TensorStore) Dir() string { return s.dir }

func (s *TensorStore) path(key string) string {
	if strings.ContainsAny(key, "/\\") {
		panic(fmt.Sprintf("storage: invalid key %q", key))
	}
	return filepath.Join(s.dir, key+".nts")
}

func (s *TensorStore) open(key string) (*os.File, error) {
	if f := s.files[key]; f != nil {
		return f, nil
	}
	f, err := os.OpenFile(s.path(key), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %q: %w", key, err)
	}
	s.files[key] = f
	return f, nil
}

// headerSize returns the byte size of a header with the given rank.
func headerSize(rank int) int64 { return int64(4 + 4 + 4*rank) }

// readHeader returns the record shape, or nil if the file is empty.
func readHeader(f *os.File) ([]int, error) {
	var magic [4]byte
	n, err := f.ReadAt(magic[:], 0)
	if n == 0 {
		return nil, nil // empty file: no header yet
	}
	if err != nil {
		return nil, err
	}
	if string(magic[:]) != tensorStoreMagic {
		return nil, fmt.Errorf("storage: bad magic %q", magic)
	}
	var rankBuf [4]byte
	if _, err := f.ReadAt(rankBuf[:], 4); err != nil {
		return nil, err
	}
	rank := int(binary.LittleEndian.Uint32(rankBuf[:]))
	if rank < 0 || rank > 8 {
		return nil, fmt.Errorf("storage: implausible rank %d", rank)
	}
	dims := make([]byte, 4*rank)
	if _, err := f.ReadAt(dims, 8); err != nil {
		return nil, err
	}
	shape := make([]int, rank)
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(dims[4*i:]))
	}
	return shape, nil
}

// Append writes the records of recs (shape [n, ...rec]) to the end of key's
// file, creating it (and its header) on first use. The record shape must
// match previous appends.
func (s *TensorStore) Append(key string, recs *tensor.Tensor) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := s.obs.Start("store/append", obs.Str("key", key), obs.Int("records", int64(recs.Dim(0))))
	// The span's wall time over the bytes written is one throughput sample
	// for the calibration fitter's write channel.
	var wroteBytes int64
	defer func() {
		if d := sp.End(); wroteBytes > 0 {
			s.obs.Samples().AddWrite(wroteBytes, d)
		}
	}()
	f, err := s.open(key)
	if err != nil {
		return err
	}
	recShape := recs.Shape()[1:]
	existing, err := readHeader(f)
	if err != nil {
		return err
	}
	if existing == nil {
		// Fresh file: write header.
		buf := make([]byte, headerSize(len(recShape)))
		copy(buf, tensorStoreMagic)
		binary.LittleEndian.PutUint32(buf[4:], uint32(len(recShape)))
		for i, d := range recShape {
			binary.LittleEndian.PutUint32(buf[8+4*i:], uint32(d))
		}
		if _, err := f.WriteAt(buf, 0); err != nil {
			return fmt.Errorf("storage: write header: %w", err)
		}
		s.counters.AddWrite(int64(len(buf)))
	} else if !tensor.ShapeEq(existing, recShape) {
		return fmt.Errorf("storage: key %q holds records of shape %v, appending %v", key, existing, recShape)
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	buf := make([]byte, 4*recs.Len())
	for i, v := range recs.Data() {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	if _, err := f.WriteAt(buf, st.Size()); err != nil {
		return fmt.Errorf("storage: append %q: %w", key, err)
	}
	s.counters.AddWrite(int64(len(buf)))
	wroteBytes = int64(len(buf))
	sp.Attr(obs.Int("bytes", int64(len(buf))))
	s.obs.Registry().Counter("store.append.bytes").Add(int64(len(buf)))
	return nil
}

// Count returns the number of records stored under key (0 if absent).
func (s *TensorStore) Count(key string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.countLocked(key)
}

func (s *TensorStore) countLocked(key string) (int, error) {
	f, err := s.open(key)
	if err != nil {
		return 0, err
	}
	shape, err := readHeader(f)
	if err != nil {
		return 0, err
	}
	if shape == nil {
		return 0, nil
	}
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	recBytes := int64(tensor.NumElems(shape)) * 4
	return int((st.Size() - headerSize(len(shape))) / recBytes), nil
}

// RecordShape returns the per-record shape stored under key, or nil if the
// key holds no records yet.
func (s *TensorStore) RecordShape(key string) ([]int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.open(key)
	if err != nil {
		return nil, err
	}
	return readHeader(f)
}

// ReadRows gathers the given record indices into a [len(idx), ...rec]
// tensor, the access pattern of mini-batch training over materialized
// features.
func (s *TensorStore) ReadRows(key string, idx []int) (*tensor.Tensor, error) {
	return s.ReadRowsIn(key, idx, nil)
}

// ReadRowsIn is ReadRows allocating the result from a (nil falls back to
// the heap); the trainer's feed prefetcher passes its step scope so
// materialized feeds participate in tensor recycling.
func (s *TensorStore) ReadRowsIn(key string, idx []int, a tensor.Alloc) (*tensor.Tensor, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := s.obs.Start("store/read", obs.Str("key", key), obs.Int("rows", int64(len(idx))))
	// Cold bytes over the call's wall time is one throughput sample for the
	// calibration fitter's read channel; fully cache-served calls carry no
	// disk signal and are skipped.
	var coldSample int64
	defer func() {
		if d := sp.End(); coldSample > 0 {
			s.obs.Samples().AddRead(coldSample, d)
		}
	}()
	f, err := s.open(key)
	if err != nil {
		return nil, err
	}
	shape, err := readHeader(f)
	if err != nil {
		return nil, err
	}
	if shape == nil {
		return nil, fmt.Errorf("storage: key %q is empty", key)
	}
	recElems := tensor.NumElems(shape)
	recBytes := int64(recElems) * 4
	base := headerSize(len(shape))
	outShape := append([]int{len(idx)}, shape...)
	var out *tensor.Tensor
	if a != nil {
		out = a.Get(outShape...)
	} else {
		out = tensor.New(outShape...)
	}
	buf := make([]byte, recBytes)
	var coldBytes int64
	for i, r := range idx {
		dst := out.Data()[i*recElems : (i+1)*recElems]
		if s.cache != nil {
			if row, ok := s.cache.get(key, r); ok {
				copy(dst, row)
				continue
			}
		}
		if _, err := f.ReadAt(buf, base+int64(r)*recBytes); err != nil {
			return nil, fmt.Errorf("storage: read %q row %d: %w", key, r, err)
		}
		for j := range dst {
			dst[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:]))
		}
		coldBytes += recBytes
		if s.cache != nil {
			s.cache.put(key, r, append([]float32(nil), dst...))
		}
	}
	if coldBytes > 0 {
		s.counters.AddRead(coldBytes)
		coldSample = coldBytes
	}
	if s.obs.Enabled() {
		coldRows := int(coldBytes / recBytes)
		sp.Attr(obs.Int("cold_bytes", coldBytes))
		reg := s.obs.Registry()
		reg.Counter("store.read.cold_bytes").Add(coldBytes)
		reg.Counter("store.read.cache_hits").Add(int64(len(idx) - coldRows))
		reg.Counter("store.read.cache_misses").Add(int64(coldRows))
		reg.Histogram("store.read.cold_bytes_per_call", readBytesBuckets).Observe(coldBytes)
	}
	return out, nil
}

// readBytesBuckets sizes the per-call cold-read histogram: 4 KB to 4 MB in
// decade-ish steps, tuned to mini-batch gather volumes.
var readBytesBuckets = []int64{0, 4 << 10, 64 << 10, 512 << 10, 4 << 20}

// ReadRange reads records [lo, hi).
func (s *TensorStore) ReadRange(key string, lo, hi int) (*tensor.Tensor, error) {
	idx := make([]int, hi-lo)
	for i := range idx {
		idx[i] = lo + i
	}
	return s.ReadRows(key, idx)
}

// SizeBytes returns the on-disk size of key's file (0 if absent).
func (s *TensorStore) SizeBytes(key string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := os.Stat(s.path(key))
	if err != nil {
		return 0
	}
	return st.Size()
}

// TotalBytes returns the total on-disk size of every file in the store.
func (s *TensorStore) TotalBytes() int64 {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}

// Delete removes key's file, e.g. when re-optimization drops a materialized
// layer.
func (s *TensorStore) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f := s.files[key]; f != nil {
		_ = f.Close() // the file is being deleted; close errors are moot
		delete(s.files, key)
	}
	if s.cache != nil {
		s.cache.invalidate(key)
	}
	if err := os.Remove(s.path(key)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Keys lists every key with a file in the store, sorted.
func (s *TensorStore) Keys() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: list store dir: %w", err)
	}
	var keys []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".nts") {
			continue
		}
		keys = append(keys, strings.TrimSuffix(e.Name(), ".nts"))
	}
	sort.Strings(keys)
	return keys, nil
}

// GC deletes every stored file whose key fails keep, returning the deleted
// keys (sorted) and the bytes freed. It is the reconciliation primitive for
// evolving workloads: when a replan drops signatures from the materialized
// set V, only their artifacts are collected and everything still in V stays
// on disk.
func (s *TensorStore) GC(keep func(key string) bool) (deleted []string, freed int64, err error) {
	keys, err := s.Keys()
	if err != nil {
		return nil, 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := s.obs.Start("store/gc")
	defer sp.End()
	for _, key := range keys {
		if keep(key) {
			continue
		}
		if st, serr := os.Stat(s.path(key)); serr == nil {
			freed += st.Size()
		}
		if f := s.files[key]; f != nil {
			_ = f.Close() // the file is being deleted; close errors are moot
			delete(s.files, key)
		}
		if s.cache != nil {
			s.cache.invalidate(key)
		}
		if rerr := os.Remove(s.path(key)); rerr != nil && !os.IsNotExist(rerr) {
			return deleted, freed, fmt.Errorf("storage: gc %q: %w", key, rerr)
		}
		deleted = append(deleted, key)
	}
	sp.Attr(obs.Int("deleted", int64(len(deleted))), obs.Int("freed_bytes", freed))
	return deleted, freed, nil
}

// Close releases all open file handles.
func (s *TensorStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for k, f := range s.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.files, k)
	}
	return first
}
