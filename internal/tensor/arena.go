package tensor

import (
	"math/bits"
	"sync"
)

// Alloc is a tensor allocation strategy. The zero strategy (a nil Alloc, or
// Heap) makes fresh garbage-collected buffers; Arena/Scope recycle buffers
// across training steps. Every Get returns a zero-filled tensor, matching
// New, so kernels that accumulate into or partially write their output
// (MatMul, Im2Col padding, Col2Im scatter) work identically under either
// strategy.
type Alloc interface {
	// Get returns a zero-filled tensor of the given shape.
	Get(shape ...int) *Tensor
	// Put returns a tensor's buffer for reuse. The caller must not touch t
	// afterwards. Implementations may ignore it (Heap, Scope — a Scope
	// recycles wholesale on Release instead).
	Put(t *Tensor)
}

// Heap is the default allocation strategy: plain make, no reuse.
type Heap struct{}

// Get implements Alloc.
func (Heap) Get(shape ...int) *Tensor { return New(shape...) }

// Put implements Alloc (a no-op; the garbage collector reclaims).
func (Heap) Put(*Tensor) {}

// Size-class bounds: buffers are pooled in power-of-two classes from
// 1<<arenaMinBits to 1<<arenaMaxBits float32s. Smaller requests round up to
// the minimum class; larger ones bypass the pool entirely.
const (
	arenaMinBits = 6  // 64 floats, 256 B
	arenaMaxBits = 28 // 256 Mi floats, 1 GiB
)

// Arena is a thread-safe size-class buffer pool for tensor backing arrays.
// Get pops a recycled buffer of the next power-of-two class (zeroing the
// handed-out region) or makes one on a miss; Put pushes the buffer back.
// Steady-state training reaches a 100% hit rate after the first step, so
// per-step tensor garbage drops to ~zero — the physical side of the
// allocator. Logical tensor lifetimes (what graph.Tape reports to its
// AllocObserver and obs.MemTracker replays against the Section 4.3.3 B_mem
// estimate) are unchanged: metering counts tensors, not mallocs.
type Arena struct {
	mu    sync.Mutex
	free  [arenaMaxBits + 1][][]float32
	stats ArenaStats
}

// ArenaStats is a point-in-time snapshot of an arena's traffic.
type ArenaStats struct {
	// Gets counts all allocations served; Hits of those were recycled
	// buffers, Misses were fresh makes (including over-max bypasses).
	Gets, Hits, Misses int64
	// Puts counts buffers returned for reuse.
	Puts int64
	// PooledBytes is the byte footprint currently idle in the free lists.
	PooledBytes int64
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// arenaClass returns the size-class exponent for n floats, or -1 when n is
// outside the pooled range.
func arenaClass(n int) int {
	if n <= 0 {
		return -1
	}
	c := bits.Len(uint(n - 1))
	if c < arenaMinBits {
		c = arenaMinBits
	}
	if c > arenaMaxBits {
		return -1
	}
	return c
}

// Get implements Alloc.
func (a *Arena) Get(shape ...int) *Tensor {
	n := NumElems(shape)
	c := arenaClass(n)
	if c < 0 {
		a.mu.Lock()
		a.stats.Gets++
		a.stats.Misses++
		a.mu.Unlock()
		t := New(shape...)
		t.alloc = a
		return t
	}
	var buf []float32
	a.mu.Lock()
	a.stats.Gets++
	if l := a.free[c]; len(l) > 0 {
		buf = l[len(l)-1]
		a.free[c] = l[:len(l)-1]
		a.stats.Hits++
		a.stats.PooledBytes -= int64(cap(buf)) * 4
	} else {
		a.stats.Misses++
	}
	a.mu.Unlock()
	if buf == nil {
		buf = make([]float32, 1<<c)
	}
	data := buf[:n]
	clear(data)
	return &Tensor{shape: append([]int(nil), shape...), data: data, alloc: a}
}

// Put implements Alloc. Only buffers whose capacity is exactly a pooled
// size class are kept; anything else is dropped for the garbage collector.
func (a *Arena) Put(t *Tensor) {
	if t == nil || cap(t.data) == 0 {
		return
	}
	buf := t.data[:0]
	c := bits.Len(uint(cap(buf) - 1))
	if c < arenaMinBits || c > arenaMaxBits || cap(buf) != 1<<c {
		return
	}
	a.mu.Lock()
	a.free[c] = append(a.free[c], buf)
	a.stats.Puts++
	a.stats.PooledBytes += int64(cap(buf)) * 4
	a.mu.Unlock()
}

// Stats returns a snapshot of the arena's allocation traffic.
func (a *Arena) Stats() ArenaStats {
	if a == nil {
		return ArenaStats{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Scope returns a fresh step scope drawing from the arena. A nil arena
// yields a nil scope, whose methods fall back to heap allocation — callers
// thread one variable through unconditionally.
func (a *Arena) Scope() *Scope {
	if a == nil {
		return nil
	}
	return &Scope{arena: a}
}

// Scope is a step-scoped allocation context: every tensor Get during one
// training step (mini-batch forward + backward + optimizer step, or one
// materialization chunk) is recorded, and Release returns all of them to
// the arena at once. Tensors derived from a scoped tensor (via NewFrom or
// the tensor kernels) allocate from the same scope, so installing the scope
// on the step's root tensors — the batch feeds — is enough to capture every
// forward intermediate, cache, and gradient of the step.
//
// A Scope is safe for concurrent Gets (the feed prefetcher allocates batch
// t+1's feeds while batch t computes in a sibling scope), but Release must
// happen strictly after the last use of every tensor in the scope: the
// buffers are recycled immediately and will back unrelated tensors.
type Scope struct {
	arena *Arena
	mu    sync.Mutex
	taken []*Tensor
}

// Get implements Alloc. On a nil scope it falls back to New.
func (s *Scope) Get(shape ...int) *Tensor {
	if s == nil {
		return New(shape...)
	}
	t := s.arena.Get(shape...)
	t.alloc = s
	s.mu.Lock()
	s.taken = append(s.taken, t)
	s.mu.Unlock()
	return t
}

// Put implements Alloc as a no-op: a scope recycles wholesale on Release,
// so nothing is returned early (and no tensor can be double-freed).
func (s *Scope) Put(*Tensor) {}

// Release returns every tensor allocated through the scope to the arena
// and resets the scope for reuse. All tensors handed out since the last
// Release become invalid.
func (s *Scope) Release() {
	if s == nil {
		return
	}
	s.mu.Lock()
	taken := s.taken
	s.taken = nil
	s.mu.Unlock()
	for _, t := range taken {
		t.alloc = nil
		s.arena.Put(t)
	}
}

// Live returns how many tensors the scope currently holds (test hook).
func (s *Scope) Live() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.taken)
}

// NewFrom returns a zero-filled tensor of the given shape allocated from
// src's allocator — the propagation rule that threads a step scope through
// the kernels: feeds are allocated from the scope, every derived tensor
// follows. A nil src or an unscoped src falls back to New.
func NewFrom(src *Tensor, shape ...int) *Tensor {
	if src != nil && src.alloc != nil {
		return src.alloc.Get(shape...)
	}
	return New(shape...)
}

// NewFrom2 is NewFrom over two candidate sources, preferring the first
// scoped one. Binary kernels use it so the output lands in the step scope
// even when one operand is an unscoped view or parameter.
func NewFrom2(a, b *Tensor, shape ...int) *Tensor {
	if a != nil && a.alloc != nil {
		return a.alloc.Get(shape...)
	}
	return NewFrom(b, shape...)
}

// CloneIn returns a deep copy of t allocated from a; a nil a inherits t's
// own allocator (matching Clone).
func CloneIn(a Alloc, t *Tensor) *Tensor {
	var c *Tensor
	if a != nil {
		c = a.Get(t.shape...)
	} else {
		c = NewFrom(t, t.shape...)
	}
	copy(c.data, t.data)
	return c
}

// WithAlloc returns a header alias of t whose derived tensors allocate from
// a. It is how an executor roots a step scope at the batch feeds: the alias
// shares t's buffer (nothing is copied or recorded for release — the feed
// itself stays owned by its creator) but everything computed *from* it lands
// in the scope. A nil a, nil t, or already-scoped t is returned unchanged.
func WithAlloc(a Alloc, t *Tensor) *Tensor {
	if t == nil || a == nil || t.alloc != nil {
		return t
	}
	return &Tensor{shape: t.shape, data: t.data, alloc: a}
}
