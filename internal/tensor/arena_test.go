package tensor

import (
	"math/rand"
	"sync"
	"testing"
)

func TestArenaReusesSizeClasses(t *testing.T) {
	a := NewArena()
	t1 := a.Get(4, 16) // 64 floats, exactly the min class
	buf := t1.data[:cap(t1.data)]
	a.Put(t1)
	t2 := a.Get(8, 8)
	if &buf[0] != &t2.data[0] {
		t.Fatalf("expected recycled buffer for same size class")
	}
	st := a.Stats()
	if st.Gets != 2 || st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

func TestArenaGetZeroesRecycledBuffers(t *testing.T) {
	a := NewArena()
	t1 := a.Get(10)
	for i := range t1.data {
		t1.data[i] = 7
	}
	// Dirty the slack beyond len too: the next Get may use a longer prefix.
	full := t1.data[:cap(t1.data)]
	for i := range full {
		full[i] = 9
	}
	a.Put(t1)
	t2 := a.Get(40)
	for i, v := range t2.data {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %v", i, v)
		}
	}
}

func TestArenaClassBounds(t *testing.T) {
	if c := arenaClass(0); c != -1 {
		t.Fatalf("class(0) = %d", c)
	}
	if c := arenaClass(1); c != arenaMinBits {
		t.Fatalf("class(1) = %d, want min %d", c, arenaMinBits)
	}
	if c := arenaClass(1 << arenaMaxBits); c != arenaMaxBits {
		t.Fatalf("class(max) = %d", c)
	}
	if c := arenaClass(1<<arenaMaxBits + 1); c != -1 {
		t.Fatalf("oversize should bypass pool, got class %d", c)
	}
	// Oversized Gets still work, they just are not pooled.
	a := NewArena()
	big := a.Get(1<<arenaMaxBits + 1)
	if big.Len() != 1<<arenaMaxBits+1 {
		t.Fatalf("oversize get wrong len")
	}
	a.Put(big)
	if st := a.Stats(); st.PooledBytes != 0 {
		t.Fatalf("oversize buffer must not be pooled: %+v", st)
	}
}

func TestScopeReleaseRecycles(t *testing.T) {
	a := NewArena()
	s := a.Scope()
	for i := 0; i < 5; i++ {
		s.Get(32, 32)
	}
	if s.Live() != 5 {
		t.Fatalf("live = %d, want 5", s.Live())
	}
	s.Release()
	if s.Live() != 0 {
		t.Fatalf("live after release = %d", s.Live())
	}
	// Second round should be all hits.
	before := a.Stats()
	for i := 0; i < 5; i++ {
		s.Get(32, 32)
	}
	after := a.Stats()
	if hits := after.Hits - before.Hits; hits != 5 {
		t.Fatalf("expected 5 hits after warmup, got %d", hits)
	}
	s.Release()
}

func TestNilArenaAndScopeFallBackToHeap(t *testing.T) {
	var a *Arena
	s := a.Scope()
	if s != nil {
		t.Fatalf("nil arena must yield nil scope")
	}
	got := s.Get(3, 3)
	if got == nil || got.Len() != 9 || got.alloc != nil {
		t.Fatalf("nil scope Get must heap-allocate: %+v", got)
	}
	s.Release() // must not panic
	if st := a.Stats(); st != (ArenaStats{}) {
		t.Fatalf("nil arena stats must be zero")
	}
}

func TestNewFromPropagatesScope(t *testing.T) {
	a := NewArena()
	s := a.Scope()
	feed := s.Get(4, 8)
	derived := NewFrom(feed, 4, 4)
	if derived.alloc != Alloc(s) {
		t.Fatalf("derived tensor must inherit the scope")
	}
	// Kernels propagate too.
	sum := Add(feed, feed)
	if sum.alloc != Alloc(s) {
		t.Fatalf("kernel output must inherit the scope")
	}
	// NewFrom2 prefers the first scoped operand.
	plain := New(4, 8)
	if out := NewFrom2(plain, feed, 2, 2); out.alloc != Alloc(s) {
		t.Fatalf("NewFrom2 must find the scoped operand")
	}
	if live := s.Live(); live != 4 {
		t.Fatalf("scope live = %d, want 4", live)
	}
	s.Release()
}

func TestReshapeAliasDoesNotDoubleFree(t *testing.T) {
	a := NewArena()
	s := a.Scope()
	orig := s.Get(4, 8)
	view := orig.Reshape(8, 4)
	if view.alloc != Alloc(s) {
		t.Fatalf("reshape must keep the scope")
	}
	if s.Live() != 1 {
		t.Fatalf("reshape must not be recorded separately: live=%d", s.Live())
	}
	s.Release()
	if st := a.Stats(); st.Puts != 1 {
		t.Fatalf("exactly one Put expected, got %+v", st)
	}
}

func TestScopeConcurrentGets(t *testing.T) {
	a := NewArena()
	s := a.Scope()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Get(16, 16)
			}
		}()
	}
	wg.Wait()
	if s.Live() != 800 {
		t.Fatalf("live = %d, want 800", s.Live())
	}
	s.Release()
}

func TestCloneInheritsAllocator(t *testing.T) {
	a := NewArena()
	s := a.Scope()
	feed := s.Get(3, 3)
	feed.Fill(2)
	c := feed.Clone()
	if c.alloc != Alloc(s) {
		t.Fatalf("Clone must inherit the scope")
	}
	if c.data[0] != 2 {
		t.Fatalf("Clone must copy data")
	}
	// CloneIn with explicit target allocator.
	h := CloneIn(nil, feed)
	if h.alloc != Alloc(s) {
		t.Fatalf("CloneIn(nil) inherits source allocator")
	}
	s2 := a.Scope()
	c2 := CloneIn(s2, feed)
	if c2.alloc != Alloc(s2) {
		t.Fatalf("CloneIn must use the given allocator")
	}
	s.Release()
	s2.Release()
}

func TestSetMaxWorkers(t *testing.T) {
	defer SetMaxWorkers(0)
	SetMaxWorkers(3)
	if n := MaxWorkers(); n != 3 {
		t.Fatalf("MaxWorkers = %d, want 3", n)
	}
	SetMaxWorkers(0)
	if n := MaxWorkers(); n < 1 {
		t.Fatalf("default MaxWorkers = %d", n)
	}
}

// TestParallelMatchesSerial checks bit-identical results for the
// parallelized kernels under a forced multi-worker split versus one worker.
func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := RandNormal(rng, 1, 2, 12, 12, 3)
	g := ConvGeom{InH: 12, InW: 12, InC: 3, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	pool := ConvGeom{InH: 12, InW: 12, InC: 3, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	a := RandNormal(rng, 1, 300, 40)
	b := RandNormal(rng, 1, 300, 40)

	type result struct {
		im2col, col2im, mp, mpBack, gap, gapBack, add, soft *Tensor
	}
	run := func() result {
		cols := Im2Col(x, g)
		mp, arg := MaxPool2D(x, pool)
		mpb := MaxPool2DBackward(mp, arg, x.Shape())
		gap := GlobalAvgPool(x)
		return result{
			im2col:  cols,
			col2im:  Col2Im(cols, 2, g),
			mp:      mp,
			mpBack:  mpb,
			gap:     gap,
			gapBack: GlobalAvgPoolBackward(gap, x.Shape()),
			add:     Add(a, b),
			soft:    SoftmaxRows(a),
		}
	}
	SetMaxWorkers(1)
	serial := run()
	SetMaxWorkers(4)
	defer SetMaxWorkers(0)
	par := run()

	check := func(name string, s, p *Tensor) {
		t.Helper()
		if !s.SameShape(p) {
			t.Fatalf("%s: shape mismatch", name)
		}
		for i := range s.data {
			if s.data[i] != p.data[i] {
				t.Fatalf("%s: parallel result differs at %d: %v vs %v", name, i, s.data[i], p.data[i])
			}
		}
	}
	check("Im2Col", serial.im2col, par.im2col)
	check("Col2Im", serial.col2im, par.col2im)
	check("MaxPool2D", serial.mp, par.mp)
	check("MaxPool2DBackward", serial.mpBack, par.mpBack)
	check("GlobalAvgPool", serial.gap, par.gap)
	check("GlobalAvgPoolBackward", serial.gapBack, par.gapBack)
	check("Add", serial.add, par.add)
	check("SoftmaxRows", serial.soft, par.soft)
}

func TestWorkersFromEnv(t *testing.T) {
	cases := map[string]int{"": 0, "x": 0, "-2": 0, "0": 0, "1": 1, "8": 8}
	for in, want := range cases {
		if got := workersFromEnv(in); got != want {
			t.Errorf("workersFromEnv(%q) = %d, want %d", in, got, want)
		}
	}
}
