package tensor

import (
	"math/rand"
	"testing"
)

func benchMatMul(b *testing.B, m, k, n int) {
	rng := rand.New(rand.NewSource(1))
	x := RandNormal(rng, 1, m, k)
	y := RandNormal(rng, 1, k, n)
	b.SetBytes(int64(m*k+k*n+m*n) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMul64(b *testing.B)  { benchMatMul(b, 64, 64, 64) }
func BenchmarkMatMul256(b *testing.B) { benchMatMul(b, 256, 256, 256) }

func BenchmarkMatMulBT256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandNormal(rng, 1, 256, 256)
	y := RandNormal(rng, 1, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulBT(x, y)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandNormal(rng, 1, 8, 32, 32, 16)
	g := ConvGeom{InH: 32, InW: 32, InC: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(x, g)
	}
}

func BenchmarkSoftmaxRows(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandNormal(rng, 1, 512, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SoftmaxRows(x)
	}
}
