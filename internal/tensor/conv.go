package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling operation
// over NHWC tensors.
type ConvGeom struct {
	InH, InW, InC    int // input spatial dims and channels
	KH, KW           int // kernel spatial dims
	StrideH, StrideW int
	PadH, PadW       int // symmetric zero padding
}

// OutH returns the output height.
func (g ConvGeom) OutH() int { return (g.InH+2*g.PadH-g.KH)/g.StrideH + 1 }

// OutW returns the output width.
func (g ConvGeom) OutW() int { return (g.InW+2*g.PadW-g.KW)/g.StrideW + 1 }

// The conv/pool kernels dispatch on the tuned schedule table like the
// matmul family: each resolves a Schedule for its shape and runs either
// the cache-aware variant (conv_fast.go) or the seed reference body. The
// variants differ only in loop organization — merged contiguous copies,
// divide-free row counters, channel-inner pooling — so results stay
// bit-identical for any schedule.

// Im2Col lowers an NHWC input [batch, InH, InW, InC] into a matrix
// [batch*OutH*OutW, KH*KW*InC] so convolution becomes a single MatMul with a
// [KH*KW*InC, outC] kernel matrix. Each output row is written by exactly one
// chunk, so the parallel result is bit-identical to a serial run.
func Im2Col(x *Tensor, g ConvGeom) *Tensor {
	s := x.Shape()
	if len(s) != 4 || s[1] != g.InH || s[2] != g.InW || s[3] != g.InC {
		panic(fmt.Sprintf("tensor: Im2Col input shape %v does not match geometry %+v", s, g))
	}
	batch := s[0]
	oh, ow := g.OutH(), g.OutW()
	cols := g.KH * g.KW * g.InC
	rows := batch * oh * ow
	out := NewFrom(x, rows, cols)
	sch := scheduleFor(OpIm2Col, [3]int{rows, cols, 0})
	if sch.Kernel == "naive" {
		parallelFor(sch, rows, rows*cols, func(lo, hi int) {
			im2ColRange(out, x, g, oh, ow, lo, hi)
		})
		return out
	}
	parallelFor(sch, rows, rows*cols, func(lo, hi int) {
		im2ColFast(out, x, g, oh, ow, lo, hi)
	})
	return out
}

// Im2ColNaive is the seed reference body for Im2Col, single-threaded.
func Im2ColNaive(x *Tensor, g ConvGeom) *Tensor {
	s := x.Shape()
	if len(s) != 4 || s[1] != g.InH || s[2] != g.InW || s[3] != g.InC {
		panic(fmt.Sprintf("tensor: Im2ColNaive input shape %v does not match geometry %+v", s, g))
	}
	batch := s[0]
	oh, ow := g.OutH(), g.OutW()
	rows := batch * oh * ow
	out := NewFrom(x, rows, g.KH*g.KW*g.InC)
	im2ColRange(out, x, g, oh, ow, 0, rows)
	return out
}

// im2ColRange is the seed Im2Col body over output rows [lo,hi): per-row
// div/mod position recovery and per-kj copies.
func im2ColRange(out, x *Tensor, g ConvGeom, oh, ow, lo, hi int) {
	for row := lo; row < hi; row++ {
		b := row / (oh * ow)
		rem := row - b*oh*ow
		i := rem / ow
		j := rem - i*ow
		dst := out.Row(row)
		di := 0
		for ki := 0; ki < g.KH; ki++ {
			yi := i*g.StrideH + ki - g.PadH
			if yi < 0 || yi >= g.InH {
				di += g.KW * g.InC
				continue
			}
			for kj := 0; kj < g.KW; kj++ {
				xj := j*g.StrideW + kj - g.PadW
				if xj < 0 || xj >= g.InW {
					di += g.InC
					continue
				}
				src := ((b*g.InH+yi)*g.InW + xj) * g.InC
				copy(dst[di:di+g.InC], x.data[src:src+g.InC])
				di += g.InC
			}
		}
	}
}

// Col2Im scatters a column matrix gradient [batch*OutH*OutW, KH*KW*InC] back
// to the NHWC input gradient [batch, InH, InW, InC], accumulating overlaps.
// It is the adjoint of Im2Col. Overlapping windows accumulate into the same
// input positions, so parallelism is over the batch dimension only: each
// chunk owns whole per-example slabs of the output.
func Col2Im(cols *Tensor, batch int, g ConvGeom) *Tensor {
	oh, ow := g.OutH(), g.OutW()
	out := NewFrom(cols, batch, g.InH, g.InW, g.InC)
	sch := scheduleFor(OpCol2Im, [3]int{batch, oh * ow, g.KH * g.KW * g.InC})
	if sch.Kernel == "naive" {
		parallelFor(sch, batch, cols.Len(), func(blo, bhi int) {
			col2ImRange(out, cols, g, oh, ow, blo, bhi)
		})
		return out
	}
	parallelFor(sch, batch, cols.Len(), func(blo, bhi int) {
		col2ImFast(out, cols, g, oh, ow, blo, bhi)
	})
	return out
}

// Col2ImNaive is the seed reference body for Col2Im, single-threaded.
func Col2ImNaive(cols *Tensor, batch int, g ConvGeom) *Tensor {
	oh, ow := g.OutH(), g.OutW()
	out := NewFrom(cols, batch, g.InH, g.InW, g.InC)
	col2ImRange(out, cols, g, oh, ow, 0, batch)
	return out
}

// col2ImRange is the seed Col2Im body over examples [blo,bhi).
func col2ImRange(out, cols *Tensor, g ConvGeom, oh, ow, blo, bhi int) {
	for b := blo; b < bhi; b++ {
		row := b * oh * ow
		for i := 0; i < oh; i++ {
			for j := 0; j < ow; j++ {
				src := cols.Row(row)
				row++
				si := 0
				for ki := 0; ki < g.KH; ki++ {
					yi := i*g.StrideH + ki - g.PadH
					if yi < 0 || yi >= g.InH {
						si += g.KW * g.InC
						continue
					}
					for kj := 0; kj < g.KW; kj++ {
						xj := j*g.StrideW + kj - g.PadW
						if xj < 0 || xj >= g.InW {
							si += g.InC
							continue
						}
						dst := ((b*g.InH+yi)*g.InW + xj) * g.InC
						for c := 0; c < g.InC; c++ {
							out.data[dst+c] += src[si+c]
						}
						si += g.InC
					}
				}
			}
		}
	}
}

// MaxPool2D applies max pooling to an NHWC tensor and returns the pooled
// output along with the argmax flat indices into x (one per output element),
// which MaxPool2DBackward uses to route gradients.
func MaxPool2D(x *Tensor, g ConvGeom) (*Tensor, []int32) {
	s := x.Shape()
	batch := s[0]
	oh, ow := g.OutH(), g.OutW()
	out := NewFrom(x, batch, oh, ow, g.InC)
	arg := make([]int32, out.Len())
	rows := batch * oh * ow
	sch := scheduleFor(OpMaxPool, [3]int{rows, g.InC, g.KH * g.KW})
	if sch.Kernel == "naive" {
		parallelFor(sch, rows, out.Len()*g.KH*g.KW, func(lo, hi int) {
			maxPoolRange(out, arg, x, g, oh, ow, lo, hi)
		})
		return out, arg
	}
	parallelFor(sch, rows, out.Len()*g.KH*g.KW, func(lo, hi int) {
		maxPoolFast(out, arg, x, g, oh, ow, lo, hi)
	})
	return out, arg
}

// MaxPool2DNaive is the seed reference body for MaxPool2D, single-threaded.
func MaxPool2DNaive(x *Tensor, g ConvGeom) (*Tensor, []int32) {
	s := x.Shape()
	batch := s[0]
	oh, ow := g.OutH(), g.OutW()
	out := NewFrom(x, batch, oh, ow, g.InC)
	arg := make([]int32, out.Len())
	maxPoolRange(out, arg, x, g, oh, ow, 0, batch*oh*ow)
	return out, arg
}

// maxPoolRange is the seed MaxPool2D body (channel-outer window scan) over
// output positions [lo,hi).
func maxPoolRange(out *Tensor, arg []int32, x *Tensor, g ConvGeom, oh, ow, lo, hi int) {
	for row := lo; row < hi; row++ {
		b := row / (oh * ow)
		rem := row - b*oh*ow
		i := rem / ow
		j := rem - i*ow
		oi := row * g.InC
		for c := 0; c < g.InC; c++ {
			best := float32(0)
			bestIdx := int32(-1)
			for ki := 0; ki < g.KH; ki++ {
				yi := i*g.StrideH + ki - g.PadH
				if yi < 0 || yi >= g.InH {
					continue
				}
				for kj := 0; kj < g.KW; kj++ {
					xj := j*g.StrideW + kj - g.PadW
					if xj < 0 || xj >= g.InW {
						continue
					}
					idx := ((b*g.InH+yi)*g.InW+xj)*g.InC + c
					v := x.data[idx]
					if bestIdx < 0 || v > best {
						best, bestIdx = v, int32(idx)
					}
				}
			}
			out.data[oi] = best
			arg[oi] = bestIdx
			oi++
		}
	}
}

// MaxPool2DBackward scatters the pooled-output gradient back to the input
// positions recorded in arg. The argmax indices of one example always point
// into that example's slab of the input, so parallelism is over the batch
// dimension: each chunk scatters only into its own examples.
func MaxPool2DBackward(grad *Tensor, arg []int32, inShape []int) *Tensor {
	out := NewFrom(grad, inShape...)
	batch := inShape[0]
	if batch == 0 || len(arg)%batch != 0 {
		for i, idx := range arg {
			if idx >= 0 {
				out.data[idx] += grad.data[i]
			}
		}
		return out
	}
	perBatch := len(arg) / batch
	sch := scheduleFor(OpMaxPoolBack, [3]int{batch, perBatch, 0})
	parallelFor(sch, batch, len(arg), func(blo, bhi int) {
		for i := blo * perBatch; i < bhi*perBatch; i++ {
			if idx := arg[i]; idx >= 0 {
				out.data[idx] += grad.data[i]
			}
		}
	})
	return out
}

// GlobalAvgPool averages an NHWC tensor over its spatial dimensions,
// returning [batch, channels].
func GlobalAvgPool(x *Tensor) *Tensor {
	s := x.Shape()
	batch, h, w, c := s[0], s[1], s[2], s[3]
	out := NewFrom(x, batch, c)
	inv := 1 / float32(h*w)
	sch := scheduleFor(OpGap, [3]int{batch, h * w, c})
	if sch.Kernel == "naive" {
		parallelFor(sch, batch, x.Len(), func(blo, bhi int) {
			gapRange(out, x, h, w, c, inv, blo, bhi)
		})
		return out
	}
	parallelFor(sch, batch, x.Len(), func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			ob := out.Row(b)
			for p := 0; p < h*w; p++ {
				vadd(ob, x.data[(b*h*w+p)*c:(b*h*w+p+1)*c])
			}
			for j := 0; j < c; j++ {
				ob[j] *= inv
			}
		}
	})
	return out
}

// GlobalAvgPoolNaive is the seed reference body for GlobalAvgPool,
// single-threaded.
func GlobalAvgPoolNaive(x *Tensor) *Tensor {
	s := x.Shape()
	batch, h, w, c := s[0], s[1], s[2], s[3]
	out := NewFrom(x, batch, c)
	gapRange(out, x, h, w, c, 1/float32(h*w), 0, batch)
	return out
}

// gapRange is the seed GlobalAvgPool body over examples [blo,bhi).
func gapRange(out, x *Tensor, h, w, c int, inv float32, blo, bhi int) {
	for b := blo; b < bhi; b++ {
		ob := out.Row(b)
		for p := 0; p < h*w; p++ {
			xr := x.data[(b*h*w+p)*c : (b*h*w+p+1)*c]
			for j := 0; j < c; j++ {
				ob[j] += xr[j]
			}
		}
		for j := 0; j < c; j++ {
			ob[j] *= inv
		}
	}
}

// GlobalAvgPoolBackward broadcasts the [batch, channels] gradient uniformly
// back over the spatial positions of the NHWC input shape.
func GlobalAvgPoolBackward(grad *Tensor, inShape []int) *Tensor {
	batch, h, w, c := inShape[0], inShape[1], inShape[2], inShape[3]
	out := NewFrom(grad, inShape...)
	inv := 1 / float32(h*w)
	sch := scheduleFor(OpGapBack, [3]int{batch, h * w, c})
	parallelFor(sch, batch, batch*h*w*c, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			gb := grad.Row(b)
			for p := 0; p < h*w; p++ {
				or := out.data[(b*h*w+p)*c : (b*h*w+p+1)*c]
				for j := 0; j < c; j++ {
					or[j] = gb[j] * inv
				}
			}
		}
	})
	return out
}
