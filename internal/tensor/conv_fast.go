package tensor

// Cache-aware variants of the convolution-lowering and pooling kernels.
// Two reorganizations, neither of which changes what any output element
// receives or in what order:
//
//   - merged interior copies: a patch row's KW per-kj copies read
//     consecutive memory whenever the whole row is in bounds (the kj
//     offset enters the source index with coefficient 1 regardless of
//     stride), so they collapse into one KW*InC copy/accumulate;
//   - divide-free iteration: the (b, i, j) output position advances by
//     carry counters instead of per-row div/mod;
//   - channel-inner pooling: the window scan streams each [InC] input row
//     once, comparing all channels per position, instead of rescanning
//     the window per channel.

// im2ColFast lowers output rows [lo,hi) with merged interior copies.
func im2ColFast(out, x *Tensor, g ConvGeom, oh, ow, lo, hi int) {
	rowLen := g.KW * g.InC
	b := lo / (oh * ow)
	rem := lo - b*oh*ow
	i := rem / ow
	j := rem - i*ow
	for row := lo; row < hi; row++ {
		dst := out.Row(row)
		xj0 := j*g.StrideW - g.PadW
		interior := xj0 >= 0 && xj0+g.KW <= g.InW
		di := 0
		for ki := 0; ki < g.KH; ki++ {
			yi := i*g.StrideH + ki - g.PadH
			if yi < 0 || yi >= g.InH {
				di += rowLen
				continue
			}
			if interior {
				src := ((b*g.InH+yi)*g.InW + xj0) * g.InC
				copy(dst[di:di+rowLen], x.data[src:src+rowLen])
				di += rowLen
				continue
			}
			for kj := 0; kj < g.KW; kj++ {
				xj := xj0 + kj
				if xj < 0 || xj >= g.InW {
					di += g.InC
					continue
				}
				src := ((b*g.InH+yi)*g.InW + xj) * g.InC
				copy(dst[di:di+g.InC], x.data[src:src+g.InC])
				di += g.InC
			}
		}
		j++
		if j == ow {
			j = 0
			i++
			if i == oh {
				i = 0
				b++
			}
		}
	}
}

// col2ImFast scatters examples [blo,bhi) back with merged interior
// accumulates. Per output element the adds arrive in the same (i, j, ki,
// kj) order as the reference; the merge only batches independent elements.
func col2ImFast(out, cols *Tensor, g ConvGeom, oh, ow, blo, bhi int) {
	rowLen := g.KW * g.InC
	for b := blo; b < bhi; b++ {
		row := b * oh * ow
		for i := 0; i < oh; i++ {
			for j := 0; j < ow; j++ {
				src := cols.Row(row)
				row++
				xj0 := j*g.StrideW - g.PadW
				interior := xj0 >= 0 && xj0+g.KW <= g.InW
				si := 0
				for ki := 0; ki < g.KH; ki++ {
					yi := i*g.StrideH + ki - g.PadH
					if yi < 0 || yi >= g.InH {
						si += rowLen
						continue
					}
					if interior {
						dst := ((b*g.InH+yi)*g.InW + xj0) * g.InC
						vadd(out.data[dst:dst+rowLen], src[si:si+rowLen])
						si += rowLen
						continue
					}
					for kj := 0; kj < g.KW; kj++ {
						xj := xj0 + kj
						if xj < 0 || xj >= g.InW {
							si += g.InC
							continue
						}
						dst := ((b*g.InH+yi)*g.InW + xj) * g.InC
						vadd(out.data[dst:dst+g.InC], src[si:si+g.InC])
						si += g.InC
					}
				}
			}
		}
	}
}

// maxPoolFast pools output positions [lo,hi) channel-inner: per window
// position one contiguous [InC] input row is streamed and compared across
// all channels. Per channel the comparisons happen in the same (ki, kj)
// order with the same strict-greater first-wins rule as the reference, so
// both the values and the argmax indices are identical.
func maxPoolFast(out *Tensor, arg []int32, x *Tensor, g ConvGeom, oh, ow, lo, hi int) {
	c := g.InC
	best := make([]float32, c)
	idx := make([]int32, c)
	b := lo / (oh * ow)
	rem := lo - b*oh*ow
	i := rem / ow
	j := rem - i*ow
	for row := lo; row < hi; row++ {
		for cc := 0; cc < c; cc++ {
			best[cc] = 0
			idx[cc] = -1
		}
		for ki := 0; ki < g.KH; ki++ {
			yi := i*g.StrideH + ki - g.PadH
			if yi < 0 || yi >= g.InH {
				continue
			}
			for kj := 0; kj < g.KW; kj++ {
				xj := j*g.StrideW + kj - g.PadW
				if xj < 0 || xj >= g.InW {
					continue
				}
				base := ((b*g.InH+yi)*g.InW + xj) * c
				xr := x.data[base : base+c]
				for cc, v := range xr {
					if idx[cc] < 0 || v > best[cc] {
						best[cc], idx[cc] = v, int32(base+cc)
					}
				}
			}
		}
		oi := row * c
		copy(out.data[oi:oi+c], best)
		copy(arg[oi:oi+c], idx)
		j++
		if j == ow {
			j = 0
			i++
			if i == oh {
				i = 0
				b++
			}
		}
	}
}
