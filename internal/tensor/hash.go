package tensor

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Fingerprint returns a 64-bit FNV-1a hash over the tensor's shape and
// contents. Two tensors with equal shape and bit-identical float values have
// equal fingerprints; the layer identity test (paper Definition 4.3) uses
// this to compare frozen parameter values cheaply.
func (t *Tensor) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(t.shape)))
	h.Write(buf[:])
	for _, d := range t.shape {
		binary.LittleEndian.PutUint64(buf[:], uint64(d))
		h.Write(buf[:])
	}
	for _, v := range t.data {
		binary.LittleEndian.PutUint32(buf[:4], math.Float32bits(v))
		h.Write(buf[:4])
	}
	return h.Sum64()
}
