package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// The blocked/tiled/fast kernel variants must be bit-identical to the
// seed naive references for every schedule: any tile sizes (including
// non-divisible edge tiles and degenerate 1-row/1-col shapes), serial or
// parallel. These tests sweep random shapes and schedules and compare
// raw float32 bit patterns, with exact zeros (both signs) injected to
// exercise the sparsity skip paths.

type testForce struct{ sch Schedule }

func (f testForce) Schedule(Op, [3]int, int) (Schedule, bool) { return f.sch, true }

// fillMixed fills a tensor with normals plus injected +0/-0 values.
func fillMixed(rng *rand.Rand, x *Tensor) *Tensor {
	d := x.Data()
	for i := range d {
		switch rng.Intn(6) {
		case 0:
			d[i] = 0
		case 1:
			d[i] = float32(math.Copysign(0, -1))
		default:
			d[i] = float32(rng.NormFloat64())
		}
	}
	return x
}

func assertBitsEqual(t *testing.T, name string, got, want *Tensor) {
	t.Helper()
	gd, wd := got.Data(), want.Data()
	if len(gd) != len(wd) {
		t.Fatalf("%s: length %d, want %d", name, len(gd), len(wd))
	}
	for i := range gd {
		if math.Float32bits(gd[i]) != math.Float32bits(wd[i]) {
			t.Fatalf("%s: element %d = %v (bits %08x), want %v (bits %08x)",
				name, i, gd[i], math.Float32bits(gd[i]), wd[i], math.Float32bits(wd[i]))
		}
	}
}

// matmulSchedules enumerates schedules to sweep: default tiles, random
// tiles (edge tiles when they don't divide the shape), single-row tiles,
// and a forced-parallel leg so -race exercises the chunked path.
func matmulSchedules(rng *rand.Rand, k int) []Schedule {
	return []Schedule{
		{},
		{TileM: 1, TileK: 1},
		{TileM: 1 + rng.Intn(6), TileK: 1 + rng.Intn(k+4)},
		{TileM: 4, TileK: 256},
		{TileM: 1 + rng.Intn(6), TileK: 1 + rng.Intn(k+4), Workers: 4, SerialBelow: 1},
	}
}

func TestMatMulFamilyBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	SetMaxWorkers(4)
	t.Cleanup(func() {
		SetMaxWorkers(0)
		SetScheduleSource(nil)
	})
	for iter := 0; iter < 40; iter++ {
		m, k, n := 1+rng.Intn(33), 1+rng.Intn(40), 1+rng.Intn(33)
		a := fillMixed(rng, New(m, k))
		b := fillMixed(rng, New(k, n))
		bt := fillMixed(rng, New(n, k))
		at := fillMixed(rng, New(k, m))
		wantMM := MatMulNaive(a, b)
		wantBT := MatMulBTNaive(a, bt)
		wantAT := MatMulATNaive(at, b)
		for _, sch := range matmulSchedules(rng, k) {
			SetScheduleSource(testForce{sch})
			assertBitsEqual(t, "MatMul "+sch.String(), MatMul(a, b), wantMM)
			assertBitsEqual(t, "MatMulBT "+sch.String(), MatMulBT(a, bt), wantBT)
			assertBitsEqual(t, "MatMulAT "+sch.String(), MatMulAT(at, b), wantAT)
			SetScheduleSource(nil)
		}
	}
}

// randGeom draws a conv/pool geometry with at least one output position,
// covering non-unit strides, padding, and 1-wide degenerate planes.
func randGeom(rng *rand.Rand) ConvGeom {
	for {
		g := ConvGeom{
			InH: 1 + rng.Intn(10), InW: 1 + rng.Intn(10), InC: 1 + rng.Intn(5),
			KH: 1 + rng.Intn(3), KW: 1 + rng.Intn(3),
			StrideH: 1 + rng.Intn(3), StrideW: 1 + rng.Intn(3),
			PadH: rng.Intn(3), PadW: rng.Intn(3),
		}
		if g.InH+2*g.PadH >= g.KH && g.InW+2*g.PadW >= g.KW {
			return g
		}
	}
}

func convSchedules() []Schedule {
	return []Schedule{
		{},                           // fast variant, serial heuristics
		{Workers: 4, SerialBelow: 1}, // fast variant, forced parallel
		{Kernel: "fast", Workers: 1}, // fast variant, forced serial
	}
}

func TestConvFamilyBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	SetMaxWorkers(4)
	t.Cleanup(func() {
		SetMaxWorkers(0)
		SetScheduleSource(nil)
	})
	for iter := 0; iter < 40; iter++ {
		g := randGeom(rng)
		batch := 1 + rng.Intn(4)
		x := fillMixed(rng, New(batch, g.InH, g.InW, g.InC))
		oh, ow := g.OutH(), g.OutW()
		cols := fillMixed(rng, New(batch*oh*ow, g.KH*g.KW*g.InC))

		wantIm := Im2ColNaive(x, g)
		wantCol := Col2ImNaive(cols, batch, g)
		wantMP, wantArg := MaxPool2DNaive(x, g)
		wantGap := GlobalAvgPoolNaive(x)
		for _, sch := range convSchedules() {
			SetScheduleSource(testForce{sch})
			assertBitsEqual(t, "Im2Col "+sch.String(), Im2Col(x, g), wantIm)
			assertBitsEqual(t, "Col2Im "+sch.String(), Col2Im(cols, batch, g), wantCol)
			gotMP, gotArg := MaxPool2D(x, g)
			assertBitsEqual(t, "MaxPool2D "+sch.String(), gotMP, wantMP)
			for i := range gotArg {
				if gotArg[i] != wantArg[i] {
					t.Fatalf("MaxPool2D %s: argmax %d = %d, want %d", sch.String(), i, gotArg[i], wantArg[i])
				}
			}
			assertBitsEqual(t, "GlobalAvgPool "+sch.String(), GlobalAvgPool(x), wantGap)

			// Backward scatters: same body either path; the forced-parallel
			// leg checks chunk disjointness under -race.
			grad := fillMixed(rng, New(batch, g.InC))
			assertBitsEqual(t, "GlobalAvgPoolBackward "+sch.String(),
				GlobalAvgPoolBackward(grad, x.Shape()), GlobalAvgPoolBackward(grad, x.Shape()))
			pg := fillMixed(rng, New(batch, oh, ow, g.InC))
			assertBitsEqual(t, "MaxPool2DBackward "+sch.String(),
				MaxPool2DBackward(pg, wantArg, x.Shape()), MaxPool2DBackward(pg, wantArg, x.Shape()))
			SetScheduleSource(nil)
		}
	}
}

// TestSIMDHelpersMatchScalar pins the assembly helpers to the scalar
// bodies bit for bit: one multiply then one add per element, no FMA.
func TestSIMDHelpersMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 50; iter++ {
		n := 1 + rng.Intn(130) // crosses the 8- and 32-lane boundaries
		dst := fillMixed(rng, New(n))
		x := fillMixed(rng, New(n))
		a := float32(rng.NormFloat64())

		wantAxpy := dst.Clone()
		saxpyGeneric(wantAxpy.Data(), x.Data(), a)
		gotAxpy := dst.Clone()
		saxpy(gotAxpy.Data(), x.Data(), a)
		assertBitsEqual(t, "saxpy", gotAxpy, wantAxpy)

		wantAdd := dst.Clone()
		vaddGeneric(wantAdd.Data(), x.Data())
		gotAdd := dst.Clone()
		vadd(gotAdd.Data(), x.Data())
		assertBitsEqual(t, "vadd", gotAdd, wantAdd)

		d0, d1, d2, d3 := dst.Clone(), dst.Clone(), dst.Clone(), dst.Clone()
		w0, w1, w2, w3 := dst.Clone(), dst.Clone(), dst.Clone(), dst.Clone()
		a0, a1, a2, a3 := float32(rng.NormFloat64()), float32(rng.NormFloat64()), float32(rng.NormFloat64()), float32(rng.NormFloat64())
		saxpy4(d0.Data(), d1.Data(), d2.Data(), d3.Data(), x.Data(), a0, a1, a2, a3)
		saxpy4Generic(w0.Data(), w1.Data(), w2.Data(), w3.Data(), x.Data(), a0, a1, a2, a3)
		assertBitsEqual(t, "saxpy4 row0", d0, w0)
		assertBitsEqual(t, "saxpy4 row1", d1, w1)
		assertBitsEqual(t, "saxpy4 row2", d2, w2)
		assertBitsEqual(t, "saxpy4 row3", d3, w3)
	}
}
