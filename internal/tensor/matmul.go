package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the minimum number of multiply-accumulate operations
// below which matmul runs single-threaded; spawning goroutines for tiny
// matrices costs more than it saves.
const parallelThreshold = 1 << 16

// MatMul computes the matrix product of a's 2-D view [m,k] and b's 2-D view
// [k,n], returning an [m,n] tensor. Rows are distributed across goroutines
// for large products.
func MatMul(a, b *Tensor) *Tensor {
	m, k := a.Rows(), a.Cols()
	k2, n := b.Rows(), b.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch [%d,%d]x[%d,%d]", m, k, k2, n))
	}
	out := New(m, n)
	parallelRows(m, m*k*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.data[i*k : (i+1)*k]
			oi := out.data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := ai[p]
				//lint:ignore floateq exact-zero skip: sparsity fast path, not a tolerance check
				if av == 0 {
					continue
				}
				bp := b.data[p*n : (p+1)*n]
				for j := range bp {
					oi[j] += av * bp[j]
				}
			}
		}
	})
	return out
}

// MatMulBT computes a × bᵀ where a is [m,k] and b is [n,k], returning [m,n].
// It avoids materializing the transpose and is used by backward passes.
func MatMulBT(a, b *Tensor) *Tensor {
	m, k := a.Rows(), a.Cols()
	n, k2 := b.Rows(), b.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulBT inner dimension mismatch [%d,%d]x[%d,%d]T", m, k, n, k2))
	}
	out := New(m, n)
	parallelRows(m, m*k*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.data[i*k : (i+1)*k]
			oi := out.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := b.data[j*k : (j+1)*k]
				var s float32
				for p := 0; p < k; p++ {
					s += ai[p] * bj[p]
				}
				oi[j] = s
			}
		}
	})
	return out
}

// MatMulAT computes aᵀ × b where a is [k,m] and b is [k,n], returning [m,n].
// It accumulates over a's rows and is used to form weight gradients.
func MatMulAT(a, b *Tensor) *Tensor {
	k, m := a.Rows(), a.Cols()
	k2, n := b.Rows(), b.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulAT inner dimension mismatch [%d,%d]T x [%d,%d]", k, m, k2, n))
	}
	out := New(m, n)
	parallelRows(m, m*k*n, func(lo, hi int) {
		for p := 0; p < k; p++ {
			ap := a.data[p*m : (p+1)*m]
			bp := b.data[p*n : (p+1)*n]
			for i := lo; i < hi; i++ {
				av := ap[i]
				//lint:ignore floateq exact-zero skip: sparsity fast path, not a tolerance check
				if av == 0 {
					continue
				}
				oi := out.data[i*n : (i+1)*n]
				for j := range bp {
					oi[j] += av * bp[j]
				}
			}
		}
	})
	return out
}

// parallelRows splits [0,rows) into contiguous chunks and runs fn on each,
// using one goroutine per chunk when work (a multiply-accumulate count)
// exceeds parallelThreshold.
func parallelRows(rows, work int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || workers <= 1 || rows <= 1 {
		fn(0, rows)
		return
	}
	if workers > rows {
		workers = rows
	}
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
