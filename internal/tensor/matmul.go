package tensor

import "fmt"

// The matmul family dispatches on the tuned schedule table (see
// schedule.go): each public kernel resolves a Schedule for its shape and
// runs either the blocked SIMD variant (matmul_blocked.go) or the seed
// scalar reference. Both are bit-identical: every output element
// accumulates its terms in ascending p with one multiply then one add per
// term, and terms with an exact-zero a-coefficient are skipped — the
// sparsity fast path the seed MatMul had, now uniform across the family
// (MatMulBT historically computed unskipped dot products; it shares the
// skip semantics since the packed variant landed, so frozen-layer zero
// gradients short-circuit in backward passes too).

// MatMul computes the matrix product of a's 2-D view [m,k] and b's 2-D view
// [k,n], returning an [m,n] tensor.
func MatMul(a, b *Tensor) *Tensor {
	m, k := a.Rows(), a.Cols()
	k2, n := b.Rows(), b.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch [%d,%d]x[%d,%d]", m, k, k2, n))
	}
	out := NewFrom2(a, b, m, n)
	sch := scheduleFor(OpMatMul, [3]int{m, k, n})
	if sch.Kernel == "naive" {
		parallelFor(sch, m, m*k*n, func(lo, hi int) {
			matMulRange(out, a, b, lo, hi)
		})
		return out
	}
	matMulBlocked(out, a, b, sch)
	return out
}

// MatMulNaive is the seed scalar reference for MatMul: the row-axpy triple
// loop, single-threaded. It is the autotuner's baseline leg and the
// bit-identity oracle for the blocked variant.
func MatMulNaive(a, b *Tensor) *Tensor {
	m, k := a.Rows(), a.Cols()
	k2, n := b.Rows(), b.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulNaive inner dimension mismatch [%d,%d]x[%d,%d]", m, k, k2, n))
	}
	out := NewFrom2(a, b, m, n)
	matMulRange(out, a, b, 0, m)
	return out
}

// matMulRange runs the seed MatMul body over output rows [lo,hi).
func matMulRange(out, a, b *Tensor, lo, hi int) {
	k, n := a.Cols(), b.Cols()
	for i := lo; i < hi; i++ {
		ai := a.data[i*k : (i+1)*k]
		oi := out.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := ai[p]
			//lint:ignore floateq exact-zero skip: sparsity fast path, not a tolerance check
			if av == 0 {
				continue
			}
			bp := b.data[p*n : (p+1)*n]
			for j := range bp {
				oi[j] += av * bp[j]
			}
		}
	}
}

// MatMulBT computes a × bᵀ where a is [m,k] and b is [n,k], returning [m,n].
// It avoids materializing the transpose and is used by backward passes.
func MatMulBT(a, b *Tensor) *Tensor {
	m, k := a.Rows(), a.Cols()
	n, k2 := b.Rows(), b.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulBT inner dimension mismatch [%d,%d]x[%d,%d]T", m, k, n, k2))
	}
	out := NewFrom2(a, b, m, n)
	sch := scheduleFor(OpMatMulBT, [3]int{m, k, n})
	if sch.Kernel == "naive" {
		parallelFor(sch, m, m*k*n, func(lo, hi int) {
			matMulBTRange(out, a, b, lo, hi)
		})
		return out
	}
	matMulBTPacked(out, a, b, sch)
	return out
}

// MatMulBTNaive is the scalar reference for MatMulBT: per-element dot
// products in ascending p with the family's exact-zero skip on a's
// coefficients, single-threaded.
func MatMulBTNaive(a, b *Tensor) *Tensor {
	m, k := a.Rows(), a.Cols()
	n, k2 := b.Rows(), b.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulBTNaive inner dimension mismatch [%d,%d]x[%d,%d]T", m, k, n, k2))
	}
	out := NewFrom2(a, b, m, n)
	matMulBTRange(out, a, b, 0, m)
	return out
}

// matMulBTRange runs the scalar MatMulBT body over output rows [lo,hi).
func matMulBTRange(out, a, b *Tensor, lo, hi int) {
	k, n := a.Cols(), b.Rows()
	for i := lo; i < hi; i++ {
		ai := a.data[i*k : (i+1)*k]
		oi := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.data[j*k : (j+1)*k]
			var s float32
			for p := 0; p < k; p++ {
				av := ai[p]
				//lint:ignore floateq exact-zero skip: sparsity fast path, not a tolerance check
				if av == 0 {
					continue
				}
				s += av * bj[p]
			}
			oi[j] = s
		}
	}
}

// MatMulAT computes aᵀ × b where a is [k,m] and b is [k,n], returning [m,n].
// It accumulates over a's rows and is used to form weight gradients.
func MatMulAT(a, b *Tensor) *Tensor {
	k, m := a.Rows(), a.Cols()
	k2, n := b.Rows(), b.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulAT inner dimension mismatch [%d,%d]T x [%d,%d]", k, m, k2, n))
	}
	out := NewFrom2(a, b, m, n)
	sch := scheduleFor(OpMatMulAT, [3]int{m, k, n})
	if sch.Kernel == "naive" {
		parallelFor(sch, m, m*k*n, func(lo, hi int) {
			matMulATRange(out, a, b, lo, hi)
		})
		return out
	}
	parallelFor(sch, m, m*k*n, func(lo, hi int) {
		for p := 0; p < k; p++ {
			ap := a.data[p*m : (p+1)*m]
			bp := b.data[p*n : (p+1)*n]
			for i := lo; i < hi; i++ {
				av := ap[i]
				//lint:ignore floateq exact-zero skip: sparsity fast path, not a tolerance check
				if av == 0 {
					continue
				}
				saxpy(out.data[i*n:(i+1)*n], bp, av)
			}
		}
	})
	return out
}

// MatMulATNaive is the seed scalar reference for MatMulAT, single-threaded.
func MatMulATNaive(a, b *Tensor) *Tensor {
	k, m := a.Rows(), a.Cols()
	k2, n := b.Rows(), b.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulATNaive inner dimension mismatch [%d,%d]T x [%d,%d]", k, m, k2, n))
	}
	out := NewFrom2(a, b, m, n)
	matMulATRange(out, a, b, 0, m)
	return out
}

// matMulATRange runs the seed MatMulAT body over output columns-of-a
// (= output rows) [lo,hi).
func matMulATRange(out, a, b *Tensor, lo, hi int) {
	k, m, n := a.Rows(), a.Cols(), b.Cols()
	for p := 0; p < k; p++ {
		ap := a.data[p*m : (p+1)*m]
		bp := b.data[p*n : (p+1)*n]
		for i := lo; i < hi; i++ {
			av := ap[i]
			//lint:ignore floateq exact-zero skip: sparsity fast path, not a tolerance check
			if av == 0 {
				continue
			}
			oi := out.data[i*n : (i+1)*n]
			for j := range bp {
				oi[j] += av * bp[j]
			}
		}
	}
}
