package tensor

import "fmt"

// MatMul computes the matrix product of a's 2-D view [m,k] and b's 2-D view
// [k,n], returning an [m,n] tensor. Rows are distributed across goroutines
// for large products.
func MatMul(a, b *Tensor) *Tensor {
	m, k := a.Rows(), a.Cols()
	k2, n := b.Rows(), b.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch [%d,%d]x[%d,%d]", m, k, k2, n))
	}
	out := NewFrom2(a, b, m, n)
	Parallel(m, m*k*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.data[i*k : (i+1)*k]
			oi := out.data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := ai[p]
				//lint:ignore floateq exact-zero skip: sparsity fast path, not a tolerance check
				if av == 0 {
					continue
				}
				bp := b.data[p*n : (p+1)*n]
				for j := range bp {
					oi[j] += av * bp[j]
				}
			}
		}
	})
	return out
}

// MatMulBT computes a × bᵀ where a is [m,k] and b is [n,k], returning [m,n].
// It avoids materializing the transpose and is used by backward passes.
func MatMulBT(a, b *Tensor) *Tensor {
	m, k := a.Rows(), a.Cols()
	n, k2 := b.Rows(), b.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulBT inner dimension mismatch [%d,%d]x[%d,%d]T", m, k, n, k2))
	}
	out := NewFrom2(a, b, m, n)
	Parallel(m, m*k*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.data[i*k : (i+1)*k]
			oi := out.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := b.data[j*k : (j+1)*k]
				var s float32
				for p := 0; p < k; p++ {
					s += ai[p] * bj[p]
				}
				oi[j] = s
			}
		}
	})
	return out
}

// MatMulAT computes aᵀ × b where a is [k,m] and b is [k,n], returning [m,n].
// It accumulates over a's rows and is used to form weight gradients.
func MatMulAT(a, b *Tensor) *Tensor {
	k, m := a.Rows(), a.Cols()
	k2, n := b.Rows(), b.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulAT inner dimension mismatch [%d,%d]T x [%d,%d]", k, m, k2, n))
	}
	out := NewFrom2(a, b, m, n)
	Parallel(m, m*k*n, func(lo, hi int) {
		for p := 0; p < k; p++ {
			ap := a.data[p*m : (p+1)*m]
			bp := b.data[p*n : (p+1)*n]
			for i := lo; i < hi; i++ {
				av := ap[i]
				//lint:ignore floateq exact-zero skip: sparsity fast path, not a tolerance check
				if av == 0 {
					continue
				}
				oi := out.data[i*n : (i+1)*n]
				for j := range bp {
					oi[j] += av * bp[j]
				}
			}
		}
	})
	return out
}
