package tensor

// Blocked, schedule-parameterized matmul variants. The strategy: keep the
// seed's per-output-element accumulation chain (ascending p, one multiply
// then one add per term, exact-zero a-coefficients skipped) but feed it
// through the SIMD micro-kernels and reorganize the loops for locality:
//
//   - TileM groups output rows so each load of a b-panel row updates
//     several output rows (saxpy4 shares one x load across four
//     accumulator rows);
//   - TileK blocks the reduction dimension so the b panel in flight stays
//     cache-resident across the whole row sweep (and, for MatMulBT, so the
//     transposed panel can be packed once into a contiguous slab).
//
// Loop blocking never changes which terms reach an output element or in
// what order — each element still sees its terms in ascending p — so every
// variant is bit-identical to the naive reference for any tile sizes.

// defaultTileM is the output-row block fed to the multi-row micro-kernel.
const defaultTileM = 4

// defaultTileK is the reduction-panel depth used when the schedule does
// not specify one; 256 float32 rows of a moderate n keep the panel within
// L2 while amortizing MatMulBT's packing pass.
const defaultTileK = 256

// matMulBlocked computes out += a×b over row blocks, reading b's rows
// directly (they are already contiguous panels).
func matMulBlocked(out, a, b *Tensor, sch Schedule) {
	m, k, n := a.Rows(), a.Cols(), b.Cols()
	tm := sch.TileM
	if tm < 1 {
		tm = defaultTileM
	}
	tk := sch.TileK
	if tk < 1 || tk > k {
		tk = k
	}
	parallelFor(sch, m, m*k*n, func(lo, hi int) {
		for kk := 0; kk < k; kk += tk {
			ke := kk + tk
			if ke > k {
				ke = k
			}
			for i0 := lo; i0 < hi; i0 += tm {
				i1 := i0 + tm
				if i1 > hi {
					i1 = hi
				}
				matMulTile(out, a, b.data, 0, i0, i1, kk, ke, n, tm)
			}
		}
	})
}

// matMulBTPacked computes a × bᵀ by packing K-blocks of bᵀ into a
// contiguous [tk, n] slab, then running the same row-axpy micro-kernels
// against the slab. Packing turns MatMulBT's column-strided b accesses
// into the contiguous panels MatMul enjoys and gives the family's
// exact-zero skip to the BT form for free.
func matMulBTPacked(out, a, b *Tensor, sch Schedule) {
	m, k := a.Rows(), a.Cols()
	n := b.Rows()
	tm := sch.TileM
	if tm < 1 {
		tm = defaultTileM
	}
	tk := sch.TileK
	if tk < 1 {
		tk = defaultTileK
	}
	if tk > k {
		tk = k
	}
	// One packed slab reused across K-blocks; derived from the operands'
	// allocator so step-scoped callers stay arena-pooled.
	pack := NewFrom2(a, b, tk, n)
	for kk := 0; kk < k; kk += tk {
		ke := kk + tk
		if ke > k {
			ke = k
		}
		// pack[p-kk][j] = b[j][p]: contiguous writes, strided reads.
		for p := kk; p < ke; p++ {
			pr := pack.data[(p-kk)*n : (p-kk+1)*n]
			for j := range pr {
				pr[j] = b.data[j*k+p]
			}
		}
		parallelFor(sch, m, m*(ke-kk)*n, func(lo, hi int) {
			for i0 := lo; i0 < hi; i0 += tm {
				i1 := i0 + tm
				if i1 > hi {
					i1 = hi
				}
				matMulTile(out, a, pack.data, kk, i0, i1, kk, ke, n, tm)
			}
		})
	}
}

// matMulTile accumulates out rows [i0,i1) over a's columns [kk,ke), with
// b-panel rows read from bdata at (p-pOff)*n. Rows are processed four at a
// time through saxpy4 when the row block and tile allow; a p-term is
// applied via saxpy4 only when all four coefficients are nonzero —
// otherwise per-row saxpy preserves the exact-zero skip (0×Inf, 0×NaN and
// -0 accumulation would otherwise diverge from the reference).
func matMulTile(out, a *Tensor, bdata []float32, pOff, i0, i1, kk, ke, n, tm int) {
	k := a.Cols()
	i := i0
	for ; tm >= 4 && i+4 <= i1; i += 4 {
		r0 := a.data[i*k : (i+1)*k]
		r1 := a.data[(i+1)*k : (i+2)*k]
		r2 := a.data[(i+2)*k : (i+3)*k]
		r3 := a.data[(i+3)*k : (i+4)*k]
		o0 := out.data[i*n : (i+1)*n]
		o1 := out.data[(i+1)*n : (i+2)*n]
		o2 := out.data[(i+2)*n : (i+3)*n]
		o3 := out.data[(i+3)*n : (i+4)*n]
		for p := kk; p < ke; p++ {
			a0, a1, a2, a3 := r0[p], r1[p], r2[p], r3[p]
			bp := bdata[(p-pOff)*n : (p-pOff+1)*n]
			//lint:ignore floateq exact-zero skip: sparsity fast path, not a tolerance check
			if a0 != 0 && a1 != 0 && a2 != 0 && a3 != 0 {
				saxpy4(o0, o1, o2, o3, bp, a0, a1, a2, a3)
				continue
			}
			//lint:ignore floateq exact-zero skip: sparsity fast path, not a tolerance check
			if a0 != 0 {
				saxpy(o0, bp, a0)
			}
			//lint:ignore floateq exact-zero skip: sparsity fast path, not a tolerance check
			if a1 != 0 {
				saxpy(o1, bp, a1)
			}
			//lint:ignore floateq exact-zero skip: sparsity fast path, not a tolerance check
			if a2 != 0 {
				saxpy(o2, bp, a2)
			}
			//lint:ignore floateq exact-zero skip: sparsity fast path, not a tolerance check
			if a3 != 0 {
				saxpy(o3, bp, a3)
			}
		}
	}
	for ; i < i1; i++ {
		ai := a.data[i*k : (i+1)*k]
		oi := out.data[i*n : (i+1)*n]
		for p := kk; p < ke; p++ {
			av := ai[p]
			//lint:ignore floateq exact-zero skip: sparsity fast path, not a tolerance check
			if av == 0 {
				continue
			}
			saxpy(oi, bdata[(p-pOff)*n:(p-pOff+1)*n], av)
		}
	}
}
