package tensor

import (
	"fmt"
	"math"
)

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	checkSame("Add", a, b)
	out := NewFrom2(a, b, a.shape...)
	parallelFor(scheduleFor(OpEltwise, [3]int{len(a.data), 0, 0}), len(a.data), len(a.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.data[i] = a.data[i] + b.data[i]
		}
	})
	return out
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	checkSame("Sub", a, b)
	out := NewFrom2(a, b, a.shape...)
	parallelFor(scheduleFor(OpEltwise, [3]int{len(a.data), 0, 0}), len(a.data), len(a.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.data[i] = a.data[i] - b.data[i]
		}
	})
	return out
}

// Mul returns a * b elementwise (Hadamard product).
func Mul(a, b *Tensor) *Tensor {
	checkSame("Mul", a, b)
	out := NewFrom2(a, b, a.shape...)
	parallelFor(scheduleFor(OpEltwise, [3]int{len(a.data), 0, 0}), len(a.data), len(a.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.data[i] = a.data[i] * b.data[i]
		}
	})
	return out
}

// Scale returns a*s elementwise.
func Scale(a *Tensor, s float32) *Tensor {
	out := NewFrom(a, a.shape...)
	parallelFor(scheduleFor(OpEltwise, [3]int{len(a.data), 0, 0}), len(a.data), len(a.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.data[i] = a.data[i] * s
		}
	})
	return out
}

// AddInPlace accumulates b into a and returns a.
func AddInPlace(a, b *Tensor) *Tensor {
	checkSame("AddInPlace", a, b)
	parallelFor(scheduleFor(OpEltwise, [3]int{len(a.data), 0, 0}), len(a.data), len(a.data), func(lo, hi int) {
		vadd(a.data[lo:hi], b.data[lo:hi])
	})
	return a
}

// AxpyInPlace computes a += s*b and returns a.
func AxpyInPlace(a *Tensor, s float32, b *Tensor) *Tensor {
	checkSame("AxpyInPlace", a, b)
	parallelFor(scheduleFor(OpEltwise, [3]int{len(a.data), 0, 0}), len(a.data), len(a.data), func(lo, hi int) {
		saxpy(a.data[lo:hi], b.data[lo:hi], s)
	})
	return a
}

// ScaleInPlace multiplies every element of a by s and returns a.
func ScaleInPlace(a *Tensor, s float32) *Tensor {
	parallelFor(scheduleFor(OpEltwise, [3]int{len(a.data), 0, 0}), len(a.data), len(a.data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a.data[i] *= s
		}
	})
	return a
}

// AddRowVec adds vector v (length a.Cols()) to every row of a's 2-D view.
func AddRowVec(a, v *Tensor) *Tensor {
	c := a.Cols()
	if v.Len() != c {
		panic(fmt.Sprintf("tensor: AddRowVec vector length %d != cols %d", v.Len(), c))
	}
	out := NewFrom(a, a.shape...)
	parallelFor(scheduleFor(OpEltwise, [3]int{a.Rows(), c, 0}), a.Rows(), a.Len(), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			ar, or := a.Row(r), out.Row(r)
			for j := 0; j < c; j++ {
				or[j] = ar[j] + v.data[j]
			}
		}
	})
	return out
}

// SumRows returns the column-wise sum over all rows of a's 2-D view: a
// vector of length a.Cols(). It is the gradient counterpart of AddRowVec.
// It runs serially: all rows accumulate into one shared output vector, and
// chunked accumulation would change float summation order.
func SumRows(a *Tensor) *Tensor {
	c := a.Cols()
	out := NewFrom(a, c)
	for r := 0; r < a.Rows(); r++ {
		ar := a.Row(r)
		for j := 0; j < c; j++ {
			out.data[j] += ar[j]
		}
	}
	return out
}

// Sum returns the sum of all elements as float64 for numerical robustness.
func Sum(a *Tensor) float64 {
	var s float64
	for _, v := range a.data {
		s += float64(v)
	}
	return s
}

// MaxAbs returns the largest absolute element value.
func MaxAbs(a *Tensor) float32 {
	var m float32
	for _, v := range a.data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// Transpose2D returns the transpose of a's 2-D view as a [cols, rows]
// tensor.
func Transpose2D(a *Tensor) *Tensor {
	r, c := a.Rows(), a.Cols()
	out := NewFrom(a, c, r)
	for i := 0; i < r; i++ {
		ai := a.Row(i)
		for j := 0; j < c; j++ {
			out.data[j*r+i] = ai[j]
		}
	}
	return out
}

// SoftmaxRows applies a numerically stable softmax to each row of a's 2-D
// view.
func SoftmaxRows(a *Tensor) *Tensor {
	out := NewFrom(a, a.shape...)
	c := a.Cols()
	// Exp dominates; weight the work estimate accordingly so moderate row
	// counts still parallelize.
	parallelFor(scheduleFor(OpRowwise, [3]int{a.Rows(), c, 0}), a.Rows(), a.Len()*8, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			ar, or := a.Row(r), out.Row(r)
			maxv := ar[0]
			for _, v := range ar[1:] {
				if v > maxv {
					maxv = v
				}
			}
			var sum float64
			for j := 0; j < c; j++ {
				e := math.Exp(float64(ar[j] - maxv))
				or[j] = float32(e)
				sum += e
			}
			inv := float32(1 / sum)
			for j := 0; j < c; j++ {
				or[j] *= inv
			}
		}
	})
	return out
}

// SoftmaxRowsBackward computes the input gradient of SoftmaxRows given the
// softmax output y and upstream gradient g: dx = y ⊙ (g − rowsum(g⊙y)).
func SoftmaxRowsBackward(y, g *Tensor) *Tensor {
	checkSame("SoftmaxRowsBackward", y, g)
	out := NewFrom2(y, g, y.shape...)
	c := y.Cols()
	parallelFor(scheduleFor(OpRowwise, [3]int{y.Rows(), c, 0}), y.Rows(), y.Len()*2, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			yr, gr, or := y.Row(r), g.Row(r), out.Row(r)
			var dot float64
			for j := 0; j < c; j++ {
				dot += float64(yr[j] * gr[j])
			}
			d := float32(dot)
			for j := 0; j < c; j++ {
				or[j] = yr[j] * (gr[j] - d)
			}
		}
	})
	return out
}

// ConcatLast concatenates tensors along the last dimension. All inputs must
// agree on every leading dimension.
func ConcatLast(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatLast of nothing")
	}
	rows := ts[0].Rows()
	total := 0
	var src *Tensor
	for _, t := range ts {
		if t.Rows() != rows {
			panic(fmt.Sprintf("tensor: ConcatLast row mismatch %d vs %d", t.Rows(), rows))
		}
		total += t.Cols()
		if src == nil && t.alloc != nil {
			src = t
		}
	}
	shape := append([]int(nil), ts[0].shape...)
	shape[len(shape)-1] = total
	out := NewFrom(src, shape...)
	for r := 0; r < rows; r++ {
		or := out.Row(r)
		off := 0
		for _, t := range ts {
			copy(or[off:], t.Row(r))
			off += t.Cols()
		}
	}
	return out
}

// SplitLast splits a along its last dimension into pieces of the given
// column widths; the widths must sum to a.Cols(). It is the gradient
// counterpart of ConcatLast.
func SplitLast(a *Tensor, widths []int) []*Tensor {
	sum := 0
	for _, w := range widths {
		sum += w
	}
	if sum != a.Cols() {
		panic(fmt.Sprintf("tensor: SplitLast widths %v do not sum to cols %d", widths, a.Cols()))
	}
	outs := make([]*Tensor, len(widths))
	for i, w := range widths {
		shape := append([]int(nil), a.shape...)
		shape[len(shape)-1] = w
		outs[i] = NewFrom(a, shape...)
	}
	for r := 0; r < a.Rows(); r++ {
		ar := a.Row(r)
		off := 0
		for i, w := range widths {
			copy(outs[i].Row(r), ar[off:off+w])
			off += w
		}
	}
	return outs
}

func checkSame(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}
