package tensor

import (
	"os"
	"runtime"
	"strconv"
	"sync/atomic"
)

// parallelThreshold is the minimum amount of work (op count) below which a
// kernel runs single-threaded; spawning goroutines for tiny tensors costs
// more than it saves.
const parallelThreshold = 1 << 16

// workerCap holds the configured worker limit; 0 means GOMAXPROCS.
var workerCap atomic.Int32

func init() {
	workerCap.Store(int32(workersFromEnv(os.Getenv("NAUTILUS_WORKERS"))))
}

// workersFromEnv parses a NAUTILUS_WORKERS value; anything unset, malformed,
// or non-positive means "no cap" (0).
func workersFromEnv(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0
	}
	return n
}

// SetMaxWorkers caps kernel parallelism at n goroutines (n <= 0 restores
// the default, GOMAXPROCS). The initial cap honors the NAUTILUS_WORKERS
// environment variable so benchmark and test runs are reproducible across
// machines; profile.Hardware plumbs the same knob through configuration.
func SetMaxWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerCap.Store(int32(n))
}

// MaxWorkers returns the effective kernel worker cap.
func MaxWorkers() int {
	if n := int(workerCap.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Parallel splits [0,n) into contiguous chunks and runs fn on each, using
// one goroutine per chunk when work (an op count) exceeds the parallel
// threshold. fn must write only to disjoint state per chunk; every kernel
// built on Parallel assigns each output element to exactly one chunk, so
// results are bit-identical to a serial run. It is parallelFor under the
// default schedule: ambient worker cap, global threshold.
func Parallel(n, work int, fn func(lo, hi int)) {
	parallelFor(Schedule{}, n, work, fn)
}
