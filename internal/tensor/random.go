package tensor

import (
	"math"
	"math/rand"
)

// RandNormal fills a new tensor of the given shape with N(0, std²) samples
// drawn from rng.
func RandNormal(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(rng.NormFloat64() * std)
	}
	return t
}

// RandUniform fills a new tensor with samples from U(lo, hi).
func RandUniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
	return t
}

// GlorotUniform fills a new tensor using Glorot/Xavier uniform
// initialization for a weight matrix with the given fan-in and fan-out.
func GlorotUniform(rng *rand.Rand, fanIn, fanOut int, shape ...int) *Tensor {
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	return RandUniform(rng, -limit, limit, shape...)
}

// HeNormal fills a new tensor using He normal initialization for the given
// fan-in, the standard choice ahead of ReLU nonlinearities.
func HeNormal(rng *rand.Rand, fanIn int, shape ...int) *Tensor {
	return RandNormal(rng, math.Sqrt(2/float64(fanIn)), shape...)
}
