package tensor

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Op names a tunable kernel family. The autotuner (internal/tensor/tune)
// keys its schedule table by Op plus a bucketed shape, and every hot-path
// kernel asks scheduleFor for its Op before running.
type Op string

// Tunable kernel families.
const (
	OpMatMul      Op = "matmul"       // MatMul: [m,k] x [k,n]
	OpMatMulBT    Op = "matmul_bt"    // MatMulBT: [m,k] x [n,k]T
	OpMatMulAT    Op = "matmul_at"    // MatMulAT: [k,m]T x [k,n]
	OpIm2Col      Op = "im2col"       // convolution lowering
	OpCol2Im      Op = "col2im"       // im2col adjoint (scatter-accumulate)
	OpMaxPool     Op = "maxpool"      // max pooling forward
	OpMaxPoolBack Op = "maxpool_back" // max pooling gradient scatter
	OpGap         Op = "gap"          // global average pooling
	OpGapBack     Op = "gap_back"     // global average pooling gradient
	OpEltwise     Op = "eltwise"      // elementwise add/sub/mul/scale/axpy
	OpRowwise     Op = "rowwise"      // softmax forward/backward rows
)

// Schedule parameterizes one kernel execution: which variant to run, its
// tile sizes, and the parallelization decision. The zero value means "all
// defaults": the blocked/fast kernel variant with its built-in tiles, the
// ambient worker cap, and the global parallel threshold — exactly the
// pre-tuning heuristics.
type Schedule struct {
	// Kernel selects the variant: "" or "blocked"/"fast" runs the
	// schedule-parameterized kernel, "naive" forces the seed reference.
	Kernel string `json:"kernel,omitempty"`
	// TileM/TileN/TileK size the register/cache blocking; 0 means the
	// kernel's default. MatMul family: TileM is the output-row block fed to
	// the multi-row SIMD micro-kernel, TileK the packed/cached panel depth.
	TileM int `json:"tile_m,omitempty"`
	TileN int `json:"tile_n,omitempty"`
	TileK int `json:"tile_k,omitempty"`
	// Workers caps goroutines for this dispatch; 0 means the ambient
	// MaxWorkers cap, 1 forces serial.
	Workers int `json:"workers,omitempty"`
	// SerialBelow is the per-kernel serial-vs-parallel cutoff: chunking is
	// skipped while the kernel's op-count estimate stays below it. 0 means
	// the global parallelThreshold; 1 means "always parallelize".
	SerialBelow int `json:"serial_below,omitempty"`
}

// String renders a compact schedule descriptor for span attributes and
// benchmark reports, e.g. "blocked m4k256 w1".
func (s Schedule) String() string {
	kern := s.Kernel
	if kern == "" {
		kern = "default"
	}
	tiles := ""
	if s.TileM > 0 {
		tiles += fmt.Sprintf("m%d", s.TileM)
	}
	if s.TileN > 0 {
		tiles += fmt.Sprintf("n%d", s.TileN)
	}
	if s.TileK > 0 {
		tiles += fmt.Sprintf("k%d", s.TileK)
	}
	if tiles != "" {
		tiles = " " + tiles
	}
	w := "w*"
	if s.Workers > 0 {
		w = fmt.Sprintf("w%d", s.Workers)
	}
	cut := ""
	if s.SerialBelow > 0 {
		cut = fmt.Sprintf(" cut%d", s.SerialBelow)
	}
	return fmt.Sprintf("%s%s %s%s", kern, tiles, w, cut)
}

// ScheduleSource resolves a tuned schedule for (op, dims) under the current
// worker cap. A miss (ok=false) makes the kernel fall back to its default
// schedule — the pre-tuning heuristics — so a partial table degrades
// gracefully. Implementations must be safe for concurrent use.
type ScheduleSource interface {
	Schedule(op Op, dims [3]int, workers int) (Schedule, bool)
}

// scheduleSource holds the installed ScheduleSource (nil = none).
var scheduleSource atomic.Value // of sourceBox

// sourceBox wraps the interface so atomic.Value accepts changing concrete
// types (including nil).
type sourceBox struct{ src ScheduleSource }

// SetScheduleSource installs the tuned-schedule source consulted by every
// kernel dispatch (nil uninstalls it, restoring the default heuristics).
// core.Config.TuneTablePath and the CLIs' -tune-table flags route here.
func SetScheduleSource(src ScheduleSource) {
	scheduleSource.Store(sourceBox{src: src})
}

// CurrentScheduleSource returns the installed schedule source (nil when
// none). Benchmarks use it to temporarily pin schedules and restore the
// table afterwards.
func CurrentScheduleSource() ScheduleSource {
	if box, ok := scheduleSource.Load().(sourceBox); ok {
		return box.src
	}
	return nil
}

// scheduleFor resolves the schedule for one kernel dispatch and records it
// in the per-op dispatch statistics.
func scheduleFor(op Op, dims [3]int) Schedule {
	if box, ok := scheduleSource.Load().(sourceBox); ok && box.src != nil {
		if sch, ok := box.src.Schedule(op, dims, MaxWorkers()); ok {
			recordDispatch(op, sch, true)
			return sch
		}
	}
	var sch Schedule // zero value = default variant + default heuristics
	recordDispatch(op, sch, false)
	return sch
}

// ScheduleFor reports the schedule the next dispatch of (op, dims) would
// use and whether it came from the installed tuned table. Benchmarks use
// it to label which schedule fired without re-deriving table lookups.
func ScheduleFor(op Op, dims [3]int) (Schedule, bool) {
	if box, ok := scheduleSource.Load().(sourceBox); ok && box.src != nil {
		if sch, ok := box.src.Schedule(op, dims, MaxWorkers()); ok {
			return sch, true
		}
	}
	return Schedule{}, false
}

// opStats accumulates dispatch counts and the last schedule fired for one
// op. last is stored as a Schedule value under the mutex-free atomic.
type opStats struct {
	tuned    atomic.Int64
	fallback atomic.Int64
	last     atomic.Value // of Schedule
}

var dispatchStats sync.Map // Op -> *opStats

func recordDispatch(op Op, sch Schedule, tuned bool) {
	v, ok := dispatchStats.Load(op)
	if !ok {
		v, _ = dispatchStats.LoadOrStore(op, &opStats{})
	}
	st := v.(*opStats)
	if tuned {
		st.tuned.Add(1)
	} else {
		st.fallback.Add(1)
	}
	st.last.Store(sch)
}

// OpDispatch is one op's dispatch statistics snapshot: how many kernel
// launches resolved a tuned schedule vs fell back to the defaults, and the
// schedule that fired last.
type OpDispatch struct {
	Op       Op
	Tuned    int64
	Fallback int64
	Last     Schedule
}

// DispatchSnapshot returns per-op dispatch statistics sorted by op name.
// The trainer and materializer diff consecutive snapshots to attach
// which-schedule-fired attributes to their spans.
func DispatchSnapshot() []OpDispatch {
	var out []OpDispatch
	dispatchStats.Range(func(k, v any) bool {
		st := v.(*opStats)
		d := OpDispatch{Op: k.(Op), Tuned: st.tuned.Load(), Fallback: st.fallback.Load()}
		if last, ok := st.last.Load().(Schedule); ok {
			d.Last = last
		}
		out = append(out, d)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Op < out[j].Op })
	return out
}

// DispatchCounts sums tuned and fallback dispatches across all ops.
func DispatchCounts() (tuned, fallback int64) {
	for _, d := range DispatchSnapshot() {
		tuned += d.Tuned
		fallback += d.Fallback
	}
	return tuned, fallback
}

// WouldParallelize reports whether a dispatch under sch chunks [0,n)
// across goroutines rather than running serially: the schedule's worker
// count (or the ambient cap) must exceed one, the loop must be divisible,
// and the work estimate must clear the schedule's serial cutoff (or the
// global threshold when the schedule doesn't set one). Benchmarks use it
// to decide whether a kernel's serial and dispatched paths even differ.
func WouldParallelize(sch Schedule, n, work int) bool {
	workers := sch.Workers
	if limit := MaxWorkers(); workers <= 0 || workers > limit {
		workers = limit
	}
	cutoff := sch.SerialBelow
	if cutoff <= 0 {
		cutoff = parallelThreshold
	}
	return work >= cutoff && workers > 1 && n > 1
}

// parallelFor is the schedule-aware sibling of Parallel: it splits [0,n)
// into contiguous chunks under the schedule's worker count and
// serial-vs-parallel cutoff instead of the global defaults. The callback
// contract is identical to Parallel's — fn must write only chunk-disjoint
// state, so results are bit-identical to a serial run (the chunkdisjoint
// analyzer checks parallelFor callbacks too).
func parallelFor(sch Schedule, n, work int, fn func(lo, hi int)) {
	if !WouldParallelize(sch, n, work) {
		fn(0, n)
		return
	}
	workers := sch.Workers
	if limit := MaxWorkers(); workers <= 0 || workers > limit {
		workers = limit
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
