package tensor

import "testing"

func TestScheduleString(t *testing.T) {
	cases := []struct {
		sch  Schedule
		want string
	}{
		{Schedule{}, "default w*"},
		{Schedule{Kernel: "naive", Workers: 1}, "naive w1"},
		{Schedule{Kernel: "blocked", TileM: 4, TileK: 256, Workers: 1}, "blocked m4k256 w1"},
		{Schedule{Workers: 8, SerialBelow: 1}, "default w8 cut1"},
	}
	for _, c := range cases {
		if got := c.sch.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.sch, got, c.want)
		}
	}
}

func TestWouldParallelize(t *testing.T) {
	SetMaxWorkers(4)
	t.Cleanup(func() { SetMaxWorkers(0) })
	cases := []struct {
		name string
		sch  Schedule
		n    int
		work int
		want bool
	}{
		{"big work, ambient workers", Schedule{}, 100, parallelThreshold, true},
		{"below global threshold", Schedule{}, 100, parallelThreshold - 1, false},
		{"tuned cutoff admits small work", Schedule{SerialBelow: 1}, 100, 10, true},
		{"tuned cutoff rejects", Schedule{SerialBelow: 1 << 30}, 100, 1 << 20, false},
		{"serial workers", Schedule{Workers: 1}, 100, 1 << 30, false},
		{"single chunk", Schedule{SerialBelow: 1}, 1, 1 << 30, false},
		{"workers above cap clamp to cap", Schedule{Workers: 64, SerialBelow: 1}, 100, 10, true},
	}
	for _, c := range cases {
		if got := WouldParallelize(c.sch, c.n, c.work); got != c.want {
			t.Errorf("%s: WouldParallelize = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestScheduleSourceDispatchCounts(t *testing.T) {
	t.Cleanup(func() { SetScheduleSource(nil) })
	a, b := New(4, 4), New(4, 4)

	SetScheduleSource(nil)
	_, fb0 := DispatchCounts()
	MatMul(a, b)
	if _, fb := DispatchCounts(); fb != fb0+1 {
		t.Fatalf("fallback dispatches = %d, want %d", fb, fb0+1)
	}

	forced := Schedule{Kernel: "naive", Workers: 1}
	SetScheduleSource(testForce{forced})
	tuned0, _ := DispatchCounts()
	MatMul(a, b)
	tuned1, _ := DispatchCounts()
	if tuned1 != tuned0+1 {
		t.Fatalf("tuned dispatches = %d, want %d", tuned1, tuned0+1)
	}

	var last Schedule
	for _, d := range DispatchSnapshot() {
		if d.Op == OpMatMul {
			last = d.Last
		}
	}
	if last != forced {
		t.Fatalf("last dispatched schedule = %+v, want %+v", last, forced)
	}

	if src := CurrentScheduleSource(); src == nil {
		t.Fatal("CurrentScheduleSource = nil with a source installed")
	}
	SetScheduleSource(nil)
	if src := CurrentScheduleSource(); src != nil {
		t.Fatalf("CurrentScheduleSource = %v after uninstall, want nil", src)
	}
}

// TestScheduleForMatchesDispatch pins the benchmark-labeling helper to
// the dispatch path: both must resolve the same schedule.
func TestScheduleForMatchesDispatch(t *testing.T) {
	t.Cleanup(func() { SetScheduleSource(nil) })
	forced := Schedule{TileM: 2, Workers: 1}
	SetScheduleSource(testForce{forced})
	sch, ok := ScheduleFor(OpMatMul, [3]int{8, 8, 8})
	if !ok || sch != forced {
		t.Fatalf("ScheduleFor = %+v, %v; want %+v, true", sch, ok, forced)
	}
	SetScheduleSource(nil)
	if _, ok := ScheduleFor(OpMatMul, [3]int{8, 8, 8}); ok {
		t.Fatal("ScheduleFor reports a tuned hit with no source installed")
	}
}
