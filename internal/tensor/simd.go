package tensor

// Portable scalar bodies of the SIMD micro-kernels. The assembly variants
// must produce bit-identical results to these: one multiply then one add
// per output element, ascending index order.

func saxpyGeneric(dst, x []float32, a float32) {
	x = x[:len(dst)]
	for i := range dst {
		dst[i] += a * x[i]
	}
}

func saxpy4Generic(d0, d1, d2, d3, x []float32, a0, a1, a2, a3 float32) {
	x = x[:len(d0)]
	for i := range x {
		v := x[i]
		d0[i] += a0 * v
		d1[i] += a1 * v
		d2[i] += a2 * v
		d3[i] += a3 * v
	}
}

func vaddGeneric(dst, x []float32) {
	x = x[:len(dst)]
	for i := range dst {
		dst[i] += x[i]
	}
}
