//go:build amd64

package tensor

// AVX2 dispatch for the SIMD micro-kernels. Detection runs once at init
// via raw CPUID/XGETBV (no external dependencies): the OS must have
// enabled XSAVE state for the YMM registers and the CPU must advertise
// AVX2. Everything falls back to the portable scalar bodies otherwise, so
// results are identical either way — the assembly preserves scalar
// operation order per output element.

//go:noescape
func saxpyAsm(dst, x *float32, n int, a float32)

//go:noescape
func saxpy4Asm(d0, d1, d2, d3, x *float32, n int, a0, a1, a2, a3 float32)

//go:noescape
func vaddAsm(dst, x *float32, n int)

func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func xgetbvAsm() (eax, edx uint32)

// hasAVX2 gates the assembly paths; resolved once at package init.
var hasAVX2 = detectAVX2()

// detectAVX2 reports whether both the CPU and the OS support AVX2:
// CPUID.1:ECX must show OSXSAVE+AVX, XCR0 must have the SSE and AVX state
// bits enabled by the OS, and CPUID.7.0:EBX must advertise AVX2.
func detectAVX2() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	if xlo, _ := xgetbvAsm(); xlo&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	return ebx7&(1<<5) != 0
}

// saxpy computes dst[i] += a*x[i] for i in [0, len(dst)), in ascending
// order with one multiply then one add per element (never FMA).
func saxpy(dst, x []float32, a float32) {
	if len(dst) == 0 {
		return
	}
	if hasAVX2 {
		saxpyAsm(&dst[0], &x[0], len(dst), a)
		return
	}
	saxpyGeneric(dst, x, a)
}

// saxpy4 runs four axpy rows over a shared x: d<r>[i] += a<r>*x[i]. The
// rows are independent accumulators, so the interleaving across rows does
// not affect any single row's result.
func saxpy4(d0, d1, d2, d3, x []float32, a0, a1, a2, a3 float32) {
	if len(d0) == 0 {
		return
	}
	if hasAVX2 {
		saxpy4Asm(&d0[0], &d1[0], &d2[0], &d3[0], &x[0], len(d0), a0, a1, a2, a3)
		return
	}
	saxpy4Generic(d0, d1, d2, d3, x, a0, a1, a2, a3)
}

// vadd computes dst[i] += x[i] for i in [0, len(dst)).
func vadd(dst, x []float32) {
	if len(dst) == 0 {
		return
	}
	if hasAVX2 {
		vaddAsm(&dst[0], &x[0], len(dst))
		return
	}
	vaddGeneric(dst, x)
}
