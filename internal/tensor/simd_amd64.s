// AVX2 micro-kernels behind the blocked matmul and cache-aware conv
// variants. Every kernel preserves the scalar reference's float32
// operation order exactly: per output element, each step is one multiply
// then one add onto the running value (VMULPS + VADDPS, never FMA — a
// fused multiply-add rounds once where the scalar code rounds twice, which
// would break bit-identity with the naive kernels). SIMD lanes vectorize
// across independent output columns, so no accumulation order changes.

#include "textflag.h"

// func saxpyAsm(dst, x *float32, n int, a float32)
// dst[0:n] += a * x[0:n], one mul-then-add per element.
TEXT ·saxpyAsm(SB), NOSPLIT, $0-28
	MOVQ         dst+0(FP), DI
	MOVQ         x+8(FP), SI
	MOVQ         n+16(FP), CX
	VBROADCASTSS a+24(FP), Y0

loop32:
	CMPQ    CX, $32
	JL      loop8
	VMOVUPS (SI), Y1
	VMOVUPS 32(SI), Y2
	VMOVUPS 64(SI), Y3
	VMOVUPS 96(SI), Y4
	VMULPS  Y0, Y1, Y1
	VMULPS  Y0, Y2, Y2
	VMULPS  Y0, Y3, Y3
	VMULPS  Y0, Y4, Y4
	VADDPS  (DI), Y1, Y1
	VADDPS  32(DI), Y2, Y2
	VADDPS  64(DI), Y3, Y3
	VADDPS  96(DI), Y4, Y4
	VMOVUPS Y1, (DI)
	VMOVUPS Y2, 32(DI)
	VMOVUPS Y3, 64(DI)
	VMOVUPS Y4, 96(DI)
	ADDQ    $128, SI
	ADDQ    $128, DI
	SUBQ    $32, CX
	JMP     loop32

loop8:
	CMPQ    CX, $8
	JL      tail
	VMOVUPS (SI), Y1
	VMULPS  Y0, Y1, Y1
	VADDPS  (DI), Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $8, CX
	JMP     loop8

tail:
	CMPQ   CX, $0
	JLE    done
	VMOVSS (SI), X1
	VMULSS X0, X1, X1
	VADDSS (DI), X1, X1
	VMOVSS X1, (DI)
	ADDQ   $4, SI
	ADDQ   $4, DI
	DECQ   CX
	JMP    tail

done:
	VZEROUPPER
	RET

// func saxpy4Asm(d0, d1, d2, d3, x *float32, n int, a0, a1, a2, a3 float32)
// Four simultaneous axpy rows sharing each load of x: d_r[0:n] += a_r * x[0:n].
TEXT ·saxpy4Asm(SB), NOSPLIT, $0-64
	MOVQ         d0+0(FP), DI
	MOVQ         d1+8(FP), R8
	MOVQ         d2+16(FP), R9
	MOVQ         d3+24(FP), R10
	MOVQ         x+32(FP), SI
	MOVQ         n+40(FP), CX
	VBROADCASTSS a0+48(FP), Y0
	VBROADCASTSS a1+52(FP), Y1
	VBROADCASTSS a2+56(FP), Y2
	VBROADCASTSS a3+60(FP), Y3

loop8:
	CMPQ    CX, $8
	JL      tail
	VMOVUPS (SI), Y4
	VMULPS  Y0, Y4, Y5
	VADDPS  (DI), Y5, Y5
	VMOVUPS Y5, (DI)
	VMULPS  Y1, Y4, Y6
	VADDPS  (R8), Y6, Y6
	VMOVUPS Y6, (R8)
	VMULPS  Y2, Y4, Y7
	VADDPS  (R9), Y7, Y7
	VMOVUPS Y7, (R9)
	VMULPS  Y3, Y4, Y8
	VADDPS  (R10), Y8, Y8
	VMOVUPS Y8, (R10)
	ADDQ    $32, SI
	ADDQ    $32, DI
	ADDQ    $32, R8
	ADDQ    $32, R9
	ADDQ    $32, R10
	SUBQ    $8, CX
	JMP     loop8

tail:
	CMPQ   CX, $0
	JLE    done
	VMOVSS (SI), X4
	VMULSS X0, X4, X5
	VADDSS (DI), X5, X5
	VMOVSS X5, (DI)
	VMULSS X1, X4, X6
	VADDSS (R8), X6, X6
	VMOVSS X6, (R8)
	VMULSS X2, X4, X7
	VADDSS (R9), X7, X7
	VMOVSS X7, (R9)
	VMULSS X3, X4, X8
	VADDSS (R10), X8, X8
	VMOVSS X8, (R10)
	ADDQ   $4, SI
	ADDQ   $4, DI
	ADDQ   $4, R8
	ADDQ   $4, R9
	ADDQ   $4, R10
	DECQ   CX
	JMP    tail

done:
	VZEROUPPER
	RET

// func vaddAsm(dst, x *float32, n int)
// dst[0:n] += x[0:n], elementwise (independent lanes, no order change).
TEXT ·vaddAsm(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ n+16(FP), CX

loop32:
	CMPQ    CX, $32
	JL      loop8
	VMOVUPS (SI), Y1
	VMOVUPS 32(SI), Y2
	VMOVUPS 64(SI), Y3
	VMOVUPS 96(SI), Y4
	VADDPS  (DI), Y1, Y1
	VADDPS  32(DI), Y2, Y2
	VADDPS  64(DI), Y3, Y3
	VADDPS  96(DI), Y4, Y4
	VMOVUPS Y1, (DI)
	VMOVUPS Y2, 32(DI)
	VMOVUPS Y3, 64(DI)
	VMOVUPS Y4, 96(DI)
	ADDQ    $128, SI
	ADDQ    $128, DI
	SUBQ    $32, CX
	JMP     loop32

loop8:
	CMPQ    CX, $8
	JL      tail
	VMOVUPS (SI), Y1
	VADDPS  (DI), Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $8, CX
	JMP     loop8

tail:
	CMPQ   CX, $0
	JLE    done
	VMOVSS (SI), X1
	VADDSS (DI), X1, X1
	VMOVSS X1, (DI)
	ADDQ   $4, SI
	ADDQ   $4, DI
	DECQ   CX
	JMP    tail

done:
	VZEROUPPER
	RET

// func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL  eaxIn+0(FP), AX
	MOVL  ecxIn+4(FP), CX
	CPUID
	MOVL  AX, eax+8(FP)
	MOVL  BX, ebx+12(FP)
	MOVL  CX, ecx+16(FP)
	MOVL  DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	MOVL   $0, CX
	XGETBV
	MOVL   AX, eax+0(FP)
	MOVL   DX, edx+4(FP)
	RET
