//go:build !amd64

package tensor

// Non-amd64 builds run the portable scalar micro-kernel bodies directly.

func saxpy(dst, x []float32, a float32) { saxpyGeneric(dst, x, a) }

func saxpy4(d0, d1, d2, d3, x []float32, a0, a1, a2, a3 float32) {
	saxpy4Generic(d0, d1, d2, d3, x, a0, a1, a2, a3)
}

func vadd(dst, x []float32) { vaddGeneric(dst, x) }
