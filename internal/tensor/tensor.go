// Package tensor implements dense float32 tensors and the numerical kernels
// needed by the Nautilus deep-learning substrate: matrix multiplication,
// elementwise operations, reductions, convolution lowering (im2col), pooling,
// and deterministic random initialization.
//
// Tensors are row-major. Most kernels interpret a tensor of rank > 2 as a 2-D
// matrix whose row count is the product of all leading dimensions and whose
// column count is the last dimension; this matches how the layer package
// applies per-position transforms to [batch, seq, hidden] activations.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float32 tensor. alloc remembers the
// allocation strategy the tensor came from (nil for plain heap tensors);
// NewFrom and the kernels consult it so tensors derived from a step-scoped
// tensor allocate from the same scope.
type Tensor struct {
	shape []int
	data  []float32
	alloc Alloc
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor with the given shape. The slice is not
// copied; the caller must not alias it elsewhere.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Data returns the backing slice. Mutating it mutates the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i. Negative i counts from the end.
func (t *Tensor) Dim(i int) int {
	if i < 0 {
		i += len(t.shape)
	}
	return t.shape[i]
}

// Rows returns the product of all leading dimensions (the 2-D view row
// count); Cols returns the last dimension. A scalar tensor has Rows()==1.
func (t *Tensor) Rows() int {
	if len(t.shape) == 0 {
		return 1
	}
	return t.Len() / t.shape[len(t.shape)-1]
}

// Cols returns the size of the last dimension, or 1 for a scalar.
func (t *Tensor) Cols() int {
	if len(t.shape) == 0 {
		return 1
	}
	return t.shape[len(t.shape)-1]
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set assigns the element at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy allocated from t's own allocator (heap for
// unscoped tensors).
func (t *Tensor) Clone() *Tensor {
	c := NewFrom(t, t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a new tensor header sharing t's data with a new shape of
// the same total size. At most one dimension may be -1, which is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer, n := -1, 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: multiple -1 dimensions in Reshape")
			}
			infer = i
		} else {
			n *= d
		}
	}
	if infer >= 0 {
		if n == 0 || t.Len()%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		shape[infer] = t.Len() / n
		n = t.Len()
	}
	if n != t.Len() {
		panic(fmt.Sprintf("tensor: reshape %v to %v changes size", t.shape, shape))
	}
	// The new header shares t's data and allocator: a reshape of a scoped
	// tensor keeps deriving from the scope. (Only the original Get is
	// recorded for release, so the alias cannot cause a double free.)
	return &Tensor{shape: shape, data: t.data, alloc: t.alloc}
}

// Row returns a view of row r of the 2-D interpretation of t.
func (t *Tensor) Row(r int) []float32 {
	c := t.Cols()
	return t.data[r*c : (r+1)*c]
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether every element of t is within tol of the
// corresponding element of o.
func (t *Tensor) AllClose(o *Tensor, tol float64) bool {
	if t.Len() != o.Len() {
		return false
	}
	for i := range t.data {
		if math.Abs(float64(t.data[i]-o.data[i])) > tol {
			return false
		}
	}
	return true
}

// String renders a compact description, truncating large tensors.
func (t *Tensor) String() string {
	const maxShown = 8
	if t.Len() <= maxShown {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.data)
	}
	return fmt.Sprintf("Tensor%v[%v ... %v]", t.shape, t.data[:4], t.data[t.Len()-2:])
}

// ShapeEq reports whether two shape slices are identical.
func ShapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// NumElems returns the product of the dimensions in shape.
func NumElems(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}
