package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Len() != 6 {
		t.Fatalf("Len = %d, want 6", x.Len())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestFromSliceAndAccessors(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if got := x.At(1, 2); got != 6 {
		t.Errorf("At(1,2) = %v, want 6", got)
	}
	x.Set(9, 0, 1)
	if got := x.At(0, 1); got != 9 {
		t.Errorf("after Set, At(0,1) = %v, want 9", got)
	}
	if x.Rows() != 2 || x.Cols() != 3 {
		t.Errorf("Rows,Cols = %d,%d, want 2,3", x.Rows(), x.Cols())
	}
	if x.Dim(-1) != 3 || x.Dim(0) != 2 {
		t.Errorf("Dim(-1)=%d Dim(0)=%d", x.Dim(-1), x.Dim(0))
	}
}

func TestFromSliceSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestReshape(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	if y.At(2, 1) != 6 {
		t.Errorf("reshaped At(2,1) = %v, want 6", y.At(2, 1))
	}
	z := x.Reshape(-1, 2)
	if z.Dim(0) != 3 {
		t.Errorf("inferred dim = %d, want 3", z.Dim(0))
	}
	// Shares data.
	y.Set(100, 0, 0)
	if x.At(0, 0) != 100 {
		t.Error("Reshape should share backing data")
	}
}

func TestReshapeBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad reshape")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := x.Clone()
	y.Set(5, 0)
	if x.At(0) != 1 {
		t.Error("Clone must not share data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	if got := Add(a, b).Data()[3]; got != 12 {
		t.Errorf("Add = %v, want 12", got)
	}
	if got := Sub(b, a).Data()[0]; got != 4 {
		t.Errorf("Sub = %v, want 4", got)
	}
	if got := Mul(a, b).Data()[1]; got != 12 {
		t.Errorf("Mul = %v, want 12", got)
	}
	if got := Scale(a, 2).Data()[2]; got != 6 {
		t.Errorf("Scale = %v, want 6", got)
	}
	AxpyInPlace(a, 10, b)
	if a.Data()[0] != 51 {
		t.Errorf("Axpy = %v, want 51", a.Data()[0])
	}
}

func TestAddRowVecAndSumRows(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	v := FromSlice([]float32{10, 20, 30}, 3)
	got := AddRowVec(a, v)
	want := []float32{11, 22, 33, 14, 25, 36}
	for i := range want {
		if got.Data()[i] != want[i] {
			t.Fatalf("AddRowVec[%d] = %v, want %v", i, got.Data()[i], want[i])
		}
	}
	s := SumRows(a)
	if s.At(0) != 5 || s.At(1) != 7 || s.At(2) != 9 {
		t.Errorf("SumRows = %v", s.Data())
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i := range want {
		if c.Data()[i] != want[i] {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data()[i], want[i])
		}
	}
}

func TestMatMulDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

// naiveMatMul is the reference implementation used by property tests.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Rows(), a.Cols(), b.Cols()
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(a.At(i, p)) * float64(b.At(p, j))
			}
			out.Set(float32(s), i, j)
		}
	}
	return out
}

func TestMatMulVariantsAgreeWithNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(20), 1+r.Intn(20), 1+r.Intn(20)
		a := RandNormal(r, 1, m, k)
		b := RandNormal(r, 1, k, n)
		want := naiveMatMul(a, b)
		if !MatMul(a, b).AllClose(want, 1e-3) {
			return false
		}
		if !MatMulBT(a, Transpose2D(b)).AllClose(want, 1e-3) {
			return false
		}
		if !MatMulAT(Transpose2D(a), b).AllClose(want, 1e-3) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestMatMulLargeParallelMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandNormal(rng, 1, 120, 60)
	b := RandNormal(rng, 1, 60, 90)
	if !MatMul(a, b).AllClose(naiveMatMul(a, b), 1e-2) {
		t.Error("parallel MatMul disagrees with naive implementation")
	}
}

func TestTranspose2D(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose2D(a)
	if !ShapeEq(at.Shape(), []int{3, 2}) {
		t.Fatalf("shape = %v", at.Shape())
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Errorf("transpose values wrong: %v", at.Data())
	}
}

func TestTransposeInvolution(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := RandNormal(r, 1, 1+r.Intn(12), 1+r.Intn(12))
		return Transpose2D(Transpose2D(a)).AllClose(a, 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxRows(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 1000, 1000, 1000}, 2, 3)
	y := SoftmaxRows(a)
	// Each row sums to 1; huge values must not overflow.
	for r := 0; r < 2; r++ {
		var sum float64
		for _, v := range y.Row(r) {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("softmax produced non-finite value %v", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Errorf("row %d sums to %v, want 1", r, sum)
		}
	}
	if !(y.At(0, 2) > y.At(0, 1) && y.At(0, 1) > y.At(0, 0)) {
		t.Error("softmax should be monotone in its inputs")
	}
}

func TestSoftmaxBackwardMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := RandNormal(rng, 1, 3, 4)
	g := RandNormal(rng, 1, 3, 4)
	y := SoftmaxRows(x)
	dx := SoftmaxRowsBackward(y, g)
	const eps = 1e-3
	for i := 0; i < x.Len(); i++ {
		orig := x.Data()[i]
		x.Data()[i] = orig + eps
		yp := SoftmaxRows(x)
		x.Data()[i] = orig - eps
		ym := SoftmaxRows(x)
		x.Data()[i] = orig
		var num float64
		for j := 0; j < x.Len(); j++ {
			num += float64(g.Data()[j]) * float64(yp.Data()[j]-ym.Data()[j]) / (2 * eps)
		}
		if math.Abs(num-float64(dx.Data()[i])) > 1e-2 {
			t.Fatalf("softmax grad[%d]: numeric %v vs analytic %v", i, num, dx.Data()[i])
		}
	}
}

func TestConcatSplitRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(6)
		widths := []int{1 + r.Intn(5), 1 + r.Intn(5), 1 + r.Intn(5)}
		parts := make([]*Tensor, len(widths))
		for i, w := range widths {
			parts[i] = RandNormal(r, 1, rows, w)
		}
		cat := ConcatLast(parts...)
		back := SplitLast(cat, widths)
		for i := range parts {
			if !back[i].AllClose(parts[i], 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// A 1x1 kernel with stride 1 should reproduce the input exactly.
	rng := rand.New(rand.NewSource(5))
	x := RandNormal(rng, 1, 2, 4, 4, 3)
	g := ConvGeom{InH: 4, InW: 4, InC: 3, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
	cols := Im2Col(x, g)
	if !ShapeEq(cols.Shape(), []int{2 * 16, 3}) {
		t.Fatalf("cols shape = %v", cols.Shape())
	}
	if !cols.Reshape(2, 4, 4, 3).AllClose(x, 0) {
		t.Error("1x1 im2col should be the identity")
	}
}

func TestIm2ColCol2ImAdjoint(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> — the defining adjoint property,
	// which guarantees correct convolution gradients.
	rng := rand.New(rand.NewSource(9))
	g := ConvGeom{InH: 5, InW: 5, InC: 2, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	x := RandNormal(rng, 1, 2, 5, 5, 2)
	cols := Im2Col(x, g)
	y := RandNormal(rng, 1, cols.Shape()...)
	lhs := Sum(Mul(cols, y))
	rhs := Sum(Mul(x, Col2Im(y, 2, g)))
	if math.Abs(lhs-rhs) > 1e-2 {
		t.Errorf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	x := FromSlice([]float32{
		1, 5, 2, 0,
		3, 4, 1, 1,
		0, 0, 9, 2,
		1, 1, 3, 8,
	}, 1, 4, 4, 1)
	g := ConvGeom{InH: 4, InW: 4, InC: 1, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	y, arg := MaxPool2D(x, g)
	want := []float32{5, 2, 1, 9}
	for i, w := range want {
		if y.Data()[i] != w {
			t.Fatalf("pool[%d] = %v, want %v", i, y.Data()[i], w)
		}
	}
	grad := FromSlice([]float32{1, 1, 1, 1}, 1, 2, 2, 1)
	dx := MaxPool2DBackward(grad, arg, x.Shape())
	if dx.At(0, 0, 1, 0) != 1 || dx.At(0, 2, 2, 0) != 1 {
		t.Error("gradient not routed to argmax positions")
	}
	if s := Sum(dx); s != 4 {
		t.Errorf("gradient mass = %v, want 4", s)
	}
}

func TestGlobalAvgPool(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8}, 1, 2, 2, 2)
	y := GlobalAvgPool(x)
	if y.At(0, 0) != 4 || y.At(0, 1) != 5 {
		t.Errorf("avg pool = %v", y.Data())
	}
	grad := FromSlice([]float32{4, 8}, 1, 2)
	dx := GlobalAvgPoolBackward(grad, x.Shape())
	if dx.At(0, 0, 0, 0) != 1 || dx.At(0, 1, 1, 1) != 2 {
		t.Errorf("avg pool backward = %v", dx.Data())
	}
}

func TestRandomInitializers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := RandUniform(rng, -2, 2, 1000)
	for _, v := range u.Data() {
		if v < -2 || v > 2 {
			t.Fatalf("uniform sample %v out of range", v)
		}
	}
	n := RandNormal(rng, 0.5, 10000)
	var mean, m2 float64
	for _, v := range n.Data() {
		mean += float64(v)
	}
	mean /= float64(n.Len())
	for _, v := range n.Data() {
		d := float64(v) - mean
		m2 += d * d
	}
	std := math.Sqrt(m2 / float64(n.Len()))
	if math.Abs(mean) > 0.05 || math.Abs(std-0.5) > 0.05 {
		t.Errorf("normal stats mean=%v std=%v", mean, std)
	}
	g := GlorotUniform(rng, 100, 100, 100, 100)
	if MaxAbs(g) > float32(math.Sqrt(6.0/200))+1e-6 {
		t.Error("glorot sample exceeds limit")
	}
}

func TestFingerprintDistinguishesAndMatches(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	c := FromSlice([]float32{1, 2, 3, 4}, 4)
	d := FromSlice([]float32{1, 2, 3, 5}, 2, 2)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical tensors must share a fingerprint")
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different shapes should change the fingerprint")
	}
	if a.Fingerprint() == d.Fingerprint() {
		t.Error("different data should change the fingerprint")
	}
}

func TestDeterministicInit(t *testing.T) {
	a := RandNormal(rand.New(rand.NewSource(42)), 1, 5, 5)
	b := RandNormal(rand.New(rand.NewSource(42)), 1, 5, 5)
	if !a.AllClose(b, 0) {
		t.Error("same seed must produce identical tensors")
	}
}
