package tune

import (
	"math/rand"

	"nautilus/internal/tensor"
)

// DefaultCases enumerates the shapes the training hot path actually
// dispatches: square/skinny/fat/large matmuls (forward, BT and AT
// backward forms), conv lowerings at the mini-ResNet stem and block
// geometries, the pooling family, and the elementwise/rowwise ops. Each
// case's Dims mirror the kernel's own dispatch computation exactly —
// they become the table entry's shape-class key.
func DefaultCases() []Case {
	rng := rand.New(rand.NewSource(42))
	var cases []Case

	addMatMuls := func(name string, m, k, n int) {
		a := tensor.RandNormal(rng, 1, m, k)
		b := tensor.RandNormal(rng, 1, k, n)
		bt := tensor.RandNormal(rng, 1, n, k)
		at := tensor.RandNormal(rng, 1, k, m)
		cases = append(cases,
			Case{Name: "matmul_" + name, Op: tensor.OpMatMul, Dims: [3]int{m, k, n},
				Run: func() { tensor.MatMul(a, b) }},
			Case{Name: "matmul_bt_" + name, Op: tensor.OpMatMulBT, Dims: [3]int{m, k, n},
				Run: func() { tensor.MatMulBT(a, bt) }},
			Case{Name: "matmul_at_" + name, Op: tensor.OpMatMulAT, Dims: [3]int{m, k, n},
				Run: func() { tensor.MatMulAT(at, b) }},
		)
	}
	addMatMuls("64", 64, 64, 64)                // small dense layers
	addMatMuls("256", 256, 256, 256)            // mid square
	addMatMuls("skinny_64x512x64", 64, 512, 64) // deep reduction, narrow output
	addMatMuls("1024", 1024, 1024, 1024)        // large square (headline shape)
	addMatMuls("conv_4096x72x16", 4096, 72, 16) // im2col-lowered conv matmul

	// Mini-BERT training shapes (batch·seq rows × dim 32 trunk): the
	// dense/attention/FFN matmuls the FTR/ATR mini workloads dispatch,
	// forward and both backward transposes, at batch 16 and 32.
	addMatMuls("bert_192x32x32", 192, 32, 32)   // QKV/attention proj, batch 16
	addMatMuls("bert_192x32x64", 192, 32, 64)   // FFN up-projection
	addMatMuls("bert_192x64x32", 192, 64, 32)   // FFN down-projection
	addMatMuls("bert_192x128x32", 192, 128, 32) // concat-last-4 head projection
	addMatMuls("bert_384x64x32", 384, 64, 32)   // batch-32 FFN down-projection

	addConv := func(name string, batch, h, w, c int, g tensor.ConvGeom) {
		x := tensor.RandNormal(rng, 1, batch, h, w, c)
		oh, ow := g.OutH(), g.OutW()
		rows := batch * oh * ow
		colsDim := g.KH * g.KW * g.InC
		colsT := tensor.Im2Col(x, g)
		cases = append(cases,
			Case{Name: "im2col_" + name, Op: tensor.OpIm2Col, Dims: [3]int{rows, colsDim, 0},
				Run: func() { tensor.Im2Col(x, g) }},
			Case{Name: "col2im_" + name, Op: tensor.OpCol2Im, Dims: [3]int{batch, oh * ow, colsDim},
				Run: func() { tensor.Col2Im(colsT, batch, g) }},
		)
	}
	// Mini-ResNet stem: 16x16x3 images, 3x3 stride-1 pad-1.
	addConv("stem_16x16x16x3", 16, 16, 16, 3,
		tensor.ConvGeom{InH: 16, InW: 16, InC: 3, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1})
	// Block geometry: wider channels on a larger plane.
	addConv("16x32x32x8", 16, 32, 32, 8,
		tensor.ConvGeom{InH: 32, InW: 32, InC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1})

	{
		batch, h, w, c := 16, 32, 32, 8
		x := tensor.RandNormal(rng, 1, batch, h, w, c)
		pool := tensor.ConvGeom{InH: h, InW: w, InC: c, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
		oh, ow := pool.OutH(), pool.OutW()
		mp, arg := tensor.MaxPool2D(x, pool)
		gap := tensor.GlobalAvgPool(x)
		cases = append(cases,
			Case{Name: "maxpool_16x32x32x8", Op: tensor.OpMaxPool,
				Dims: [3]int{batch * oh * ow, c, pool.KH * pool.KW},
				Run:  func() { tensor.MaxPool2D(x, pool) }},
			Case{Name: "maxpool_back_16x32x32x8", Op: tensor.OpMaxPoolBack,
				Dims: [3]int{batch, oh * ow * c, 0},
				Run:  func() { tensor.MaxPool2DBackward(mp, arg, x.Shape()) }},
			Case{Name: "gap_16x32x32x8", Op: tensor.OpGap,
				Dims: [3]int{batch, h * w, c},
				Run:  func() { tensor.GlobalAvgPool(x) }},
			Case{Name: "gap_back_16x32x32x8", Op: tensor.OpGapBack,
				Dims: [3]int{batch, h * w, c},
				Run:  func() { tensor.GlobalAvgPoolBackward(gap, x.Shape()) }},
		)
	}

	{
		a := tensor.RandNormal(rng, 1, 256, 256)
		b := tensor.RandNormal(rng, 1, 256, 256)
		soft := tensor.RandNormal(rng, 1, 2048, 64)
		cases = append(cases,
			Case{Name: "add_256x256", Op: tensor.OpEltwise,
				Dims: [3]int{256 * 256, 0, 0},
				Run:  func() { tensor.Add(a, b) }},
			Case{Name: "softmax_2048x64", Op: tensor.OpRowwise,
				Dims: [3]int{2048, 64, 0},
				Run:  func() { tensor.SoftmaxRows(soft) }},
		)
	}
	return cases
}
