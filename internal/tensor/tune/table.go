// Package tune autotunes the tensor kernels: it benchmarks candidate
// schedules (kernel variant, tile sizes, worker count, serial cutoff) per
// shape class and persists the winners in a versioned JSON table that the
// kernels dispatch on at runtime (tensor.SetScheduleSource).
//
// Shape classes bucket each dimension by log2, so one tuned entry covers
// every shape in its neighborhood and the table stays small. A lookup miss
// falls back to the kernels' built-in heuristics — a partial or absent
// table degrades gracefully, exactly like profile.Calibration.
package tune

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"os"

	"nautilus/internal/tensor"
)

// TableVersion is the on-disk schema version. Load rejects files written
// by a different version so a stale table fails loudly (re-tune with
// `make tune` / nautilus-bench -exp tune) instead of silently dispatching
// schedules measured against kernels that no longer exist.
const TableVersion = 1

// Bucket maps a dimension to its log2 shape class: 0 for n <= 0, else
// floor(log2(n))+1. Neighboring sizes share a bucket (256 and 300 both
// land in 9), which is what lets one tuned entry serve a family of shapes.
func Bucket(n int) int {
	if n <= 0 {
		return 0
	}
	return bits.Len(uint(n))
}

// Entry is one tuned decision: for (op, bucketed dims, bucketed worker
// cap), run this schedule. The measured timings ride along for reporting
// and regression gating; lookup ignores them.
type Entry struct {
	Op           string          `json:"op"`
	DimBuckets   [3]int          `json:"dim_buckets"`
	WorkerBucket int             `json:"worker_bucket"`
	Schedule     tensor.Schedule `json:"schedule"`

	// Case names the representative shape the entry was tuned on.
	Case string `json:"case,omitempty"`
	// BaseNsOp is the seed reference (naive kernel, one worker) timing.
	BaseNsOp float64 `json:"base_ns_op,omitempty"`
	// BestNsOp is the chosen schedule's timing on the same shape.
	BestNsOp float64 `json:"best_ns_op,omitempty"`
	// Speedup is BaseNsOp / BestNsOp.
	Speedup float64 `json:"speedup,omitempty"`
}

// Table is a persisted schedule table. It implements
// tensor.ScheduleSource, so a loaded table plugs straight into
// tensor.SetScheduleSource. The lookup index is built once at load (or
// after Add) and read-only afterwards, making concurrent lookups safe.
type Table struct {
	Version int `json:"version"`
	// Source names the run that produced the table (host, worker cap).
	Source string `json:"source,omitempty"`
	// Workers is the ambient worker cap the table was tuned under.
	Workers int     `json:"workers,omitempty"`
	Entries []Entry `json:"entries"`

	index map[tableKey]tensor.Schedule
}

type tableKey struct {
	op         tensor.Op
	d0, d1, d2 int
	w          int
}

func entryKey(e Entry) tableKey {
	return tableKey{
		op: tensor.Op(e.Op),
		d0: e.DimBuckets[0], d1: e.DimBuckets[1], d2: e.DimBuckets[2],
		w: e.WorkerBucket,
	}
}

// Add appends an entry and rebuilds the lookup index. Later entries for
// the same key win, so re-tuning a case overrides its predecessor.
func (t *Table) Add(e Entry) {
	t.Entries = append(t.Entries, e)
	t.buildIndex()
}

func (t *Table) buildIndex() {
	idx := make(map[tableKey]tensor.Schedule, len(t.Entries))
	for _, e := range t.Entries {
		idx[entryKey(e)] = e.Schedule
	}
	t.index = idx
}

// Schedule implements tensor.ScheduleSource: it resolves (op, dims) under
// the given worker cap to the tuned schedule for that shape class, or
// reports a miss so the kernel falls back to its default heuristics.
func (t *Table) Schedule(op tensor.Op, dims [3]int, workers int) (tensor.Schedule, bool) {
	if t == nil || t.index == nil {
		return tensor.Schedule{}, false
	}
	sch, ok := t.index[tableKey{
		op: op,
		d0: Bucket(dims[0]), d1: Bucket(dims[1]), d2: Bucket(dims[2]),
		w: Bucket(workers),
	}]
	return sch, ok
}

// Save writes the table as indented JSON at path, stamping the schema
// version.
func Save(path string, t *Table) error {
	if t == nil {
		return fmt.Errorf("tune: save nil table")
	}
	tt := *t
	tt.Version = TableVersion
	data, err := json.MarshalIndent(&tt, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads and validates a schedule table. A version mismatch is a hard
// error: schedules are measurements against a specific kernel generation,
// and dispatching stale ones would silently undo the tuning.
func Load(path string) (*Table, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tune: read table: %w", err)
	}
	var t Table
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("tune: parse table %s: %w", path, err)
	}
	if t.Version != TableVersion {
		return nil, fmt.Errorf("tune: table %s has version %d, this build reads version %d — regenerate it (make tune)",
			path, t.Version, TableVersion)
	}
	if len(t.Entries) == 0 {
		return nil, fmt.Errorf("tune: table %s has no entries", path)
	}
	t.buildIndex()
	return &t, nil
}
