package tune

import (
	"os"
	"path/filepath"
	"testing"

	"nautilus/internal/tensor"
)

func TestBucket(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {-3, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9}, {300, 9}, {1024, 11},
	}
	for _, c := range cases {
		if got := Bucket(c.n); got != c.want {
			t.Errorf("Bucket(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func testEntry() Entry {
	return Entry{
		Op:           string(tensor.OpMatMul),
		DimBuckets:   [3]int{Bucket(256), Bucket(256), Bucket(256)},
		WorkerBucket: Bucket(1),
		Schedule:     tensor.Schedule{TileM: 4, TileK: 256, Workers: 1},
		Case:         "matmul_256",
		BaseNsOp:     100, BestNsOp: 25, Speedup: 4,
	}
}

func TestTableLookup(t *testing.T) {
	var tbl Table
	tbl.Add(testEntry())

	// Hit: same bucket, not necessarily the same dims.
	sch, ok := tbl.Schedule(tensor.OpMatMul, [3]int{300, 280, 256}, 1)
	if !ok || sch.TileM != 4 {
		t.Fatalf("lookup = %+v, %v; want tuned schedule, true", sch, ok)
	}
	// Miss: different shape class.
	if _, ok := tbl.Schedule(tensor.OpMatMul, [3]int{64, 64, 64}, 1); ok {
		t.Fatal("lookup hit for an untuned shape class")
	}
	// Miss: different op.
	if _, ok := tbl.Schedule(tensor.OpMatMulBT, [3]int{256, 256, 256}, 1); ok {
		t.Fatal("lookup hit for an untuned op")
	}
	// Miss: different worker bucket.
	if _, ok := tbl.Schedule(tensor.OpMatMul, [3]int{256, 256, 256}, 8); ok {
		t.Fatal("lookup hit for an untuned worker cap")
	}
	// Later entries override earlier ones for the same key.
	e := testEntry()
	e.Schedule = tensor.Schedule{TileM: 1, Workers: 1}
	tbl.Add(e)
	if sch, _ := tbl.Schedule(tensor.OpMatMul, [3]int{256, 256, 256}, 1); sch.TileM != 1 {
		t.Fatalf("override lookup = %+v, want TileM 1", sch)
	}
}

func TestTableSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "table.json")
	tbl := &Table{Source: "test", Workers: 1}
	tbl.Add(testEntry())
	if err := Save(path, tbl); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != TableVersion || got.Source != "test" || len(got.Entries) != 1 {
		t.Fatalf("loaded table = %+v", got)
	}
	if sch, ok := got.Schedule(tensor.OpMatMul, [3]int{256, 256, 256}, 1); !ok || sch.TileK != 256 {
		t.Fatalf("loaded lookup = %+v, %v", sch, ok)
	}
}

func TestTableLoadRejectsVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "table.json")
	tbl := &Table{}
	tbl.Add(testEntry())
	if err := Save(path, tbl); err != nil {
		t.Fatal(err)
	}
	// Corrupt the version in place.
	raw := `{"version": 999, "entries": [{"op": "matmul"}]}`
	if err := writeFile(path, raw); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted a version-mismatched table")
	}
	if err := writeFile(path, `{"version": 1, "entries": []}`); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted an empty table")
	}
}

func TestTuneSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning benchmarks in -short mode")
	}
	// A sentinel source must survive the tuning run untouched.
	sentinel := &Table{}
	sentinel.Add(testEntry())
	tensor.SetScheduleSource(sentinel)
	t.Cleanup(func() { tensor.SetScheduleSource(nil) })

	a := tensor.New(24, 24)
	b := tensor.New(24, 24)
	cases := []Case{{
		Name: "matmul_24", Op: tensor.OpMatMul, Dims: [3]int{24, 24, 24},
		Run: func() { tensor.MatMul(a, b) },
	}}
	tbl, err := Tune(cases, Options{Workers: 1, Source: "smoke"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Entries) != 1 {
		t.Fatalf("tuned table has %d entries, want 1", len(tbl.Entries))
	}
	e := tbl.Entries[0]
	if e.BaseNsOp <= 0 || e.BestNsOp <= 0 || e.Speedup <= 0 {
		t.Fatalf("entry timings not populated: %+v", e)
	}
	if e.Schedule.Workers != 1 {
		t.Fatalf("tuned under one worker but chose %+v", e.Schedule)
	}
	if _, ok := tbl.Schedule(tensor.OpMatMul, [3]int{24, 24, 24}, 1); !ok {
		t.Fatal("tuned entry does not resolve for its own case")
	}
	if src := tensor.CurrentScheduleSource(); src != tensor.ScheduleSource(sentinel) {
		t.Fatalf("Tune did not restore the installed schedule source: %v", src)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
