package tune

import (
	"fmt"
	"time"

	"nautilus/internal/tensor"
)

// parallelHysteresis is the minimum measured advantage a parallel
// schedule must show over the best serial one to be chosen. Parallel
// timings are the noisiest (scheduler placement, sibling load), so a
// near-tie must resolve to the deterministic-latency serial schedule —
// this is what retires the old global-threshold regressions where a
// kernel parallelized into a 0.7x slowdown.
const parallelHysteresis = 1.1

// Options configures a tuning run.
type Options struct {
	// Workers is the worker cap to tune under; 0 means the ambient
	// tensor.MaxWorkers() cap.
	Workers int
	// Source labels the table (host, workload); stored verbatim.
	Source string
	// Log receives per-case progress lines; nil discards them.
	Log func(format string, args ...any)
}

// Case is one tunable shape: the op family, the dims exactly as the
// kernel's dispatch computes them (they key the table entry), and a
// closure running the kernel once through its public dispatching API.
type Case struct {
	Name string
	Op   tensor.Op
	Dims [3]int
	Run  func()
}

// forceSchedule pins every dispatch to one schedule while the tuner
// measures it. The case's Run only exercises its own kernel, so pinning
// globally is safe.
type forceSchedule struct{ sch tensor.Schedule }

func (f forceSchedule) Schedule(tensor.Op, [3]int, int) (tensor.Schedule, bool) {
	return f.sch, true
}

// Tune benchmarks every case's candidate schedules and returns the table
// of winners. Each case is timed against the seed reference (naive
// kernel, one worker); the fastest serial candidate wins unless a
// parallel candidate beats it by the hysteresis margin. The schedule
// source installed before the call is restored when Tune returns — the
// caller decides whether to install the new table.
func Tune(cases []Case, opts Options) (*Table, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = tensor.MaxWorkers()
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	saveWorkers := tensor.MaxWorkers()
	saveSource := tensor.CurrentScheduleSource()
	tensor.SetMaxWorkers(workers)
	defer func() {
		tensor.SetScheduleSource(saveSource)
		tensor.SetMaxWorkers(saveWorkers)
	}()

	t := &Table{Version: TableVersion, Source: opts.Source, Workers: workers}
	for _, c := range cases {
		if c.Run == nil || c.Op == "" {
			return nil, fmt.Errorf("tune: case %q is incomplete", c.Name)
		}
		base := timeSchedule(c, tensor.Schedule{Kernel: "naive", Workers: 1})
		bestSch, bestNs := tensor.Schedule{Kernel: "naive", Workers: 1}, base
		var bestParSch tensor.Schedule
		bestParNs, havePar := 0.0, false
		for _, cand := range candidatesFor(c.Op, workers) {
			ns := timeSchedule(c, cand)
			if cand.Workers == 1 {
				if ns < bestNs {
					bestSch, bestNs = cand, ns
				}
			} else if !havePar || ns < bestParNs {
				bestParSch, bestParNs, havePar = cand, ns, true
			}
		}
		chosen, chosenNs := bestSch, bestNs
		if havePar && bestNs/bestParNs >= parallelHysteresis {
			chosen, chosenNs = bestParSch, bestParNs
		}
		e := Entry{
			Op:           string(c.Op),
			DimBuckets:   [3]int{Bucket(c.Dims[0]), Bucket(c.Dims[1]), Bucket(c.Dims[2])},
			WorkerBucket: Bucket(workers),
			Schedule:     chosen,
			Case:         c.Name,
			BaseNsOp:     base,
			BestNsOp:     chosenNs,
			Speedup:      base / chosenNs,
		}
		t.Add(e)
		logf("tune: %-28s %-20s %8.0f -> %8.0f ns/op (%.2fx)",
			c.Name, chosen.String(), base, chosenNs, e.Speedup)
	}
	return t, nil
}

// candidatesFor enumerates the schedules worth measuring for an op
// family under the given worker cap. Every candidate carries an explicit
// worker count; parallel legs force SerialBelow=1 so the measurement
// actually exercises the chunked path even for small work estimates.
func candidatesFor(op tensor.Op, workers int) []tensor.Schedule {
	var variants []tensor.Schedule
	switch op {
	case tensor.OpMatMul, tensor.OpMatMulBT, tensor.OpMatMulAT:
		variants = []tensor.Schedule{
			{},                     // blocked, default tiles
			{TileM: 1},             // single-row saxpy stream
			{TileK: 128},           // shallow panels
			{TileK: 256},           // default packing depth, explicit
			{TileM: 4, TileK: 512}, // deep panels
			{Kernel: "naive"},      // seed body (baseline re-entered as a candidate)
		}
	default:
		variants = []tensor.Schedule{
			{},                // fast variant
			{Kernel: "naive"}, // seed body
		}
	}
	var out []tensor.Schedule
	for _, v := range variants {
		serial := v
		serial.Workers = 1
		out = append(out, serial)
		if workers > 1 {
			par := v
			par.Workers = workers
			par.SerialBelow = 1
			out = append(out, par)
		}
	}
	return out
}

// timeSchedule measures ns per Run call under a pinned schedule: warmup,
// a window doubled to >=20ms, best of three windows — the same
// noise-damping shape as the experiments' benchmark gate.
func timeSchedule(c Case, sch tensor.Schedule) float64 {
	tensor.SetScheduleSource(forceSchedule{sch: sch})
	defer tensor.SetScheduleSource(nil)
	c.Run() // warmup
	measure := func(iters int) time.Duration {
		//lint:ignore determinism wall-clock measurement is the tuner's input signal
		start := time.Now()
		for i := 0; i < iters; i++ {
			c.Run()
		}
		//lint:ignore determinism wall-clock measurement is the tuner's input signal
		return time.Since(start)
	}
	iters := 1
	var el time.Duration
	for {
		el = measure(iters)
		if el >= 20*time.Millisecond || iters >= 1<<16 {
			break
		}
		iters *= 2
	}
	best := el
	for i := 0; i < 2; i++ {
		if el = measure(iters); el < best {
			best = el
		}
	}
	return float64(best.Nanoseconds()) / float64(iters)
}
