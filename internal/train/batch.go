package train

import (
	"math/rand"

	"nautilus/internal/tensor"
)

// Batch is one mini-batch of inputs and labels with the batch dimension
// leading.
type Batch struct {
	X *tensor.Tensor
	Y *tensor.Tensor
}

// Batches splits n records into shuffled mini-batch index slices of the
// given size. The final batch may be smaller. The shuffle order derives
// from rng so epochs are reproducible.
func Batches(n, batchSize int, rng *rand.Rand) [][]int {
	idx := rng.Perm(n)
	var out [][]int
	for lo := 0; lo < n; lo += batchSize {
		hi := lo + batchSize
		if hi > n {
			hi = n
		}
		out = append(out, idx[lo:hi])
	}
	return out
}

// Gather copies the given record rows of a [n, ...] tensor into a new
// [len(idx), ...] tensor.
func Gather(t *tensor.Tensor, idx []int) *tensor.Tensor {
	return GatherIn(nil, t, idx)
}

// GatherIn is Gather allocating the batch from a (nil falls back to the
// heap); the trainer passes its step scope so feeds root the step's tensor
// recycling.
func GatherIn(a tensor.Alloc, t *tensor.Tensor, idx []int) *tensor.Tensor {
	shape := append([]int(nil), t.Shape()...)
	recSize := t.Len() / shape[0]
	shape[0] = len(idx)
	var out *tensor.Tensor
	if a != nil {
		out = a.Get(shape...)
	} else {
		out = tensor.New(shape...)
	}
	for i, r := range idx {
		copy(out.Data()[i*recSize:(i+1)*recSize], t.Data()[r*recSize:(r+1)*recSize])
	}
	return out
}
