// Package train provides the training primitives of the Nautilus substrate:
// loss functions, mini-batch SGD and Adam optimizers, and batch iteration
// helpers. The multi-branch fused-model training loop lives in
// internal/exec and composes these primitives.
package train

import (
	"fmt"
	"math"

	"nautilus/internal/tensor"
)

// Loss scores logits against integer class labels and produces the logits
// gradient for back-propagation.
type Loss interface {
	// Compute returns the mean loss and dLoss/dLogits. logits has 2-D view
	// [rows, classes]; labels holds one class id per row (float32 storage),
	// so the same implementation serves sequence labelling
	// ([batch, seq, classes] vs [batch, seq]) and classification
	// ([batch, classes] vs [batch]).
	Compute(logits, labels *tensor.Tensor) (float64, *tensor.Tensor)
	// Accuracy returns the fraction of rows whose argmax matches the label.
	Accuracy(logits, labels *tensor.Tensor) float64
}

// SoftmaxCrossEntropy is the standard classification loss: softmax over the
// last dimension followed by negative log-likelihood, averaged over rows.
type SoftmaxCrossEntropy struct{}

// Compute implements Loss.
func (SoftmaxCrossEntropy) Compute(logits, labels *tensor.Tensor) (float64, *tensor.Tensor) {
	rows, classes := logits.Rows(), logits.Cols()
	if labels.Len() != rows {
		panic(fmt.Sprintf("train: %d labels for %d logit rows", labels.Len(), rows))
	}
	probs := tensor.SoftmaxRows(logits)
	grad := tensor.NewFrom(logits, logits.Shape()...)
	var loss float64
	inv := 1 / float32(rows)
	for r := 0; r < rows; r++ {
		y := int(labels.Data()[r])
		if y < 0 || y >= classes {
			panic(fmt.Sprintf("train: label %d out of %d classes", y, classes))
		}
		pr, gr := probs.Row(r), grad.Row(r)
		loss -= math.Log(math.Max(float64(pr[y]), 1e-12))
		for j := 0; j < classes; j++ {
			gr[j] = pr[j] * inv
		}
		gr[y] -= inv
	}
	return loss / float64(rows), grad
}

// Accuracy implements Loss.
func (SoftmaxCrossEntropy) Accuracy(logits, labels *tensor.Tensor) float64 {
	rows, classes := logits.Rows(), logits.Cols()
	correct := 0
	for r := 0; r < rows; r++ {
		lr := logits.Row(r)
		best := 0
		for j := 1; j < classes; j++ {
			if lr[j] > lr[best] {
				best = j
			}
		}
		if best == int(labels.Data()[r]) {
			correct++
		}
	}
	return float64(correct) / float64(rows)
}
