package train

import (
	"math"

	"nautilus/internal/graph"
	"nautilus/internal/tensor"
)

// Optimizer updates parameters from accumulated gradients. Each model (or
// each branch of a fused model) owns its own optimizer instance; Nautilus's
// fused trainer runs several optimizers side by side, one per trainable
// branch (paper Section 3, Trainer).
type Optimizer interface {
	// Step applies one update to every param present in grads.
	Step(grads map[*graph.Param]*tensor.Tensor)
	// Clone returns a fresh optimizer with the same hyperparameters and no
	// accumulated state.
	Clone() Optimizer
	// StateBytes reports optimizer slot memory for the given params, used
	// by checkpoint sizing.
	StateBytes(params []*graph.Param) int64
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64

	vel map[*graph.Param]*tensor.Tensor
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: map[*graph.Param]*tensor.Tensor{}}
}

// Step implements Optimizer.
func (o *SGD) Step(grads map[*graph.Param]*tensor.Tensor) {
	for p, g := range grads {
		w := p.Tensor()
		//lint:ignore floateq Momentum==0 is the exact configured "plain SGD" sentinel
		if o.Momentum == 0 {
			tensor.AxpyInPlace(w, float32(-o.LR), g)
			continue
		}
		v := o.vel[p]
		if v == nil {
			v = tensor.New(w.Shape()...)
			o.vel[p] = v
		}
		tensor.ScaleInPlace(v, float32(o.Momentum))
		tensor.AxpyInPlace(v, 1, g)
		tensor.AxpyInPlace(w, float32(-o.LR), v)
	}
}

// Clone implements Optimizer.
func (o *SGD) Clone() Optimizer { return NewSGD(o.LR, o.Momentum) }

// StateBytes implements Optimizer.
func (o *SGD) StateBytes(params []*graph.Param) int64 {
	//lint:ignore floateq Momentum==0 is the exact configured "plain SGD" sentinel
	if o.Momentum == 0 {
		return 0
	}
	var n int64
	for _, p := range params {
		n += p.Bytes()
	}
	return n
}

// Adam is the Adam optimizer with bias correction, the default for
// transformer fine-tuning.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[*graph.Param]*tensor.Tensor
	v map[*graph.Param]*tensor.Tensor
}

// NewAdam returns an Adam optimizer with standard betas.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*graph.Param]*tensor.Tensor{},
		v: map[*graph.Param]*tensor.Tensor{},
	}
}

// Step implements Optimizer.
func (o *Adam) Step(grads map[*graph.Param]*tensor.Tensor) {
	o.t++
	c1 := 1 - math.Pow(o.Beta1, float64(o.t))
	c2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for p, g := range grads {
		w := p.Tensor()
		m := o.m[p]
		v := o.v[p]
		if m == nil {
			m = tensor.New(w.Shape()...)
			v = tensor.New(w.Shape()...)
			o.m[p] = m
			o.v[p] = v
		}
		wd, gd, md, vd := w.Data(), g.Data(), m.Data(), v.Data()
		b1, b2 := float32(o.Beta1), float32(o.Beta2)
		for i := range wd {
			md[i] = b1*md[i] + (1-b1)*gd[i]
			vd[i] = b2*vd[i] + (1-b2)*gd[i]*gd[i]
			mhat := float64(md[i]) / c1
			vhat := float64(vd[i]) / c2
			wd[i] -= float32(o.LR * mhat / (math.Sqrt(vhat) + o.Eps))
		}
	}
}

// Clone implements Optimizer.
func (o *Adam) Clone() Optimizer { return NewAdam(o.LR) }

// StateBytes implements Optimizer.
func (o *Adam) StateBytes(params []*graph.Param) int64 {
	var n int64
	for _, p := range params {
		n += 2 * p.Bytes()
	}
	return n
}
