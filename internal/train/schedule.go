package train

import (
	"math"

	"nautilus/internal/graph"
	"nautilus/internal/tensor"
)

// Schedule maps a 0-based optimizer step to a learning-rate multiplier.
type Schedule interface {
	Factor(step int) float64
}

// ConstantSchedule keeps the base learning rate.
type ConstantSchedule struct{}

// Factor implements Schedule.
func (ConstantSchedule) Factor(int) float64 { return 1 }

// WarmupLinearSchedule ramps linearly from 0 over Warmup steps, then decays
// linearly to zero at Total steps — the standard BERT fine-tuning schedule.
type WarmupLinearSchedule struct {
	Warmup, Total int
}

// Factor implements Schedule.
func (s WarmupLinearSchedule) Factor(step int) float64 {
	if s.Total <= 0 {
		return 1
	}
	if step < s.Warmup {
		return float64(step+1) / float64(s.Warmup)
	}
	rem := float64(s.Total-step) / float64(s.Total-s.Warmup)
	return math.Max(0, rem)
}

// CosineSchedule decays from 1 to Floor over Total steps along a cosine.
type CosineSchedule struct {
	Total int
	Floor float64
}

// Factor implements Schedule.
func (s CosineSchedule) Factor(step int) float64 {
	if s.Total <= 0 {
		return 1
	}
	if step >= s.Total {
		return s.Floor
	}
	cos := 0.5 * (1 + math.Cos(math.Pi*float64(step)/float64(s.Total)))
	return s.Floor + (1-s.Floor)*cos
}

// Scheduled wraps an optimizer with a learning-rate schedule and optional
// gradient clipping by global norm.
type Scheduled struct {
	Base  Optimizer
	Sched Schedule
	// ClipNorm > 0 rescales gradients so their global L2 norm does not
	// exceed it (transformer fine-tuning convention: 1.0).
	ClipNorm float64

	step   int
	setLR  func(factor float64)
	baseLR float64
}

// NewScheduled wraps base (an *SGD or *Adam) with sched and clipping.
func NewScheduled(base Optimizer, sched Schedule, clipNorm float64) *Scheduled {
	s := &Scheduled{Base: base, Sched: sched, ClipNorm: clipNorm}
	switch o := base.(type) {
	case *SGD:
		s.baseLR = o.LR
		s.setLR = func(f float64) { o.LR = s.baseLR * f }
	case *Adam:
		s.baseLR = o.LR
		s.setLR = func(f float64) { o.LR = s.baseLR * f }
	default:
		s.setLR = func(float64) {}
	}
	return s
}

// Step implements Optimizer: clips, applies the schedule factor, and
// delegates.
func (s *Scheduled) Step(grads map[*graph.Param]*tensor.Tensor) {
	if s.ClipNorm > 0 {
		ClipByGlobalNorm(grads, s.ClipNorm)
	}
	if s.Sched != nil {
		s.setLR(s.Sched.Factor(s.step))
	}
	s.step++
	s.Base.Step(grads)
}

// Clone implements Optimizer.
func (s *Scheduled) Clone() Optimizer {
	return NewScheduled(s.Base.Clone(), s.Sched, s.ClipNorm)
}

// StateBytes implements Optimizer.
func (s *Scheduled) StateBytes(params []*graph.Param) int64 {
	return s.Base.StateBytes(params)
}

// ClipByGlobalNorm rescales all gradients in place so their combined L2
// norm is at most maxNorm; it returns the pre-clip norm.
func ClipByGlobalNorm(grads map[*graph.Param]*tensor.Tensor, maxNorm float64) float64 {
	var sq float64
	for _, g := range grads {
		for _, v := range g.Data() {
			sq += float64(v) * float64(v)
		}
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		scale := float32(maxNorm / norm)
		for _, g := range grads {
			tensor.ScaleInPlace(g, scale)
		}
	}
	return norm
}
