package train

import (
	"math"
	"testing"

	"nautilus/internal/graph"
	"nautilus/internal/tensor"
)

func TestWarmupLinearSchedule(t *testing.T) {
	s := WarmupLinearSchedule{Warmup: 10, Total: 110}
	if f := s.Factor(0); math.Abs(f-0.1) > 1e-9 {
		t.Errorf("step 0 factor %v, want 0.1", f)
	}
	if f := s.Factor(9); math.Abs(f-1) > 1e-9 {
		t.Errorf("end of warmup factor %v, want 1", f)
	}
	// Monotone decay after warmup, reaching 0 at Total.
	prev := 2.0
	for step := 10; step <= 110; step += 20 {
		f := s.Factor(step)
		if f > prev {
			t.Errorf("schedule not decaying at step %d", step)
		}
		prev = f
	}
	if f := s.Factor(110); f != 0 {
		t.Errorf("factor at total = %v, want 0", f)
	}
	if f := s.Factor(200); f != 0 {
		t.Errorf("factor past total = %v, want 0", f)
	}
}

func TestCosineSchedule(t *testing.T) {
	s := CosineSchedule{Total: 100, Floor: 0.1}
	if f := s.Factor(0); math.Abs(f-1) > 1e-9 {
		t.Errorf("start factor %v, want 1", f)
	}
	if f := s.Factor(100); math.Abs(f-0.1) > 1e-9 {
		t.Errorf("end factor %v, want floor", f)
	}
	mid := s.Factor(50)
	if mid <= 0.1 || mid >= 1 {
		t.Errorf("mid factor %v out of (floor,1)", mid)
	}
}

func TestConstantScheduleAndZeroTotals(t *testing.T) {
	if (ConstantSchedule{}).Factor(12345) != 1 {
		t.Error("constant schedule must be 1")
	}
	if (WarmupLinearSchedule{}).Factor(5) != 1 {
		t.Error("zero-total warmup schedule must be 1")
	}
	if (CosineSchedule{}).Factor(5) != 1 {
		t.Error("zero-total cosine schedule must be 1")
	}
}

func TestClipByGlobalNorm(t *testing.T) {
	p1 := graph.NewParam("a", 2)
	p2 := graph.NewParam("b", 1)
	grads := map[*graph.Param]*tensor.Tensor{
		p1: tensor.FromSlice([]float32{3, 0}, 2),
		p2: tensor.FromSlice([]float32{4}, 1),
	}
	norm := ClipByGlobalNorm(grads, 1.0)
	if math.Abs(norm-5) > 1e-6 {
		t.Errorf("pre-clip norm %v, want 5", norm)
	}
	// After clipping: norm 1, direction preserved.
	var sq float64
	for _, g := range grads {
		for _, v := range g.Data() {
			sq += float64(v) * float64(v)
		}
	}
	if math.Abs(math.Sqrt(sq)-1) > 1e-5 {
		t.Errorf("post-clip norm %v, want 1", math.Sqrt(sq))
	}
	if math.Abs(float64(grads[p1].Data()[0])-0.6) > 1e-5 {
		t.Errorf("direction not preserved: %v", grads[p1].Data())
	}
	// Below the limit: untouched.
	small := map[*graph.Param]*tensor.Tensor{p2: tensor.FromSlice([]float32{0.5}, 1)}
	ClipByGlobalNorm(small, 1.0)
	if small[p2].Data()[0] != 0.5 {
		t.Error("sub-threshold gradients must not change")
	}
}

func TestScheduledOptimizerAppliesFactorAndClips(t *testing.T) {
	base := NewSGD(1.0, 0)
	s := NewScheduled(base, WarmupLinearSchedule{Warmup: 2, Total: 4}, 0)
	p := graph.NewParam("w", 1)
	w := p.Tensor()
	w.Data()[0] = 0

	// Step 0: factor 0.5 → lr 0.5, grad 1 → w -0.5.
	s.Step(map[*graph.Param]*tensor.Tensor{p: tensor.FromSlice([]float32{1}, 1)})
	if math.Abs(float64(w.Data()[0])+0.5) > 1e-6 {
		t.Errorf("after step 0 w=%v, want -0.5", w.Data()[0])
	}
	// Step 1: factor 1 → w -1.5.
	s.Step(map[*graph.Param]*tensor.Tensor{p: tensor.FromSlice([]float32{1}, 1)})
	if math.Abs(float64(w.Data()[0])+1.5) > 1e-6 {
		t.Errorf("after step 1 w=%v, want -1.5", w.Data()[0])
	}
	// Clone starts fresh.
	c := s.Clone().(*Scheduled)
	if c.step != 0 {
		t.Error("clone must reset step counter")
	}
	if c.StateBytes([]*graph.Param{p}) != base.StateBytes([]*graph.Param{p}) {
		t.Error("state bytes must delegate")
	}
}

func TestScheduledTrainingConverges(t *testing.T) {
	opt := NewScheduled(NewAdam(0.02), WarmupLinearSchedule{Warmup: 10, Total: 200}, 1.0)
	final := trainToy(t, opt, 150)
	if final > 0.3 {
		t.Errorf("scheduled training final loss %v, want < 0.3", final)
	}
}
