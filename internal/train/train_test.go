package train

import (
	"math"
	"math/rand"
	"testing"

	"nautilus/internal/graph"
	"nautilus/internal/layers"
	"nautilus/internal/tensor"
)

func TestSoftmaxCrossEntropyValueAndGrad(t *testing.T) {
	logits := tensor.FromSlice([]float32{2, 0, 0, 0, 3, 0}, 2, 3)
	labels := tensor.FromSlice([]float32{0, 1}, 2)
	loss, grad := SoftmaxCrossEntropy{}.Compute(logits, labels)
	// Row losses: -log(softmax_correct).
	want := 0.0
	for r, y := range []int{0, 1} {
		p := tensor.SoftmaxRows(logits).Row(r)[y]
		want -= math.Log(float64(p))
	}
	want /= 2
	if math.Abs(loss-want) > 1e-6 {
		t.Errorf("loss = %v, want %v", loss, want)
	}
	// Gradient rows sum to zero (softmax-CE property).
	for r := 0; r < 2; r++ {
		var s float64
		for _, v := range grad.Row(r) {
			s += float64(v)
		}
		if math.Abs(s) > 1e-6 {
			t.Errorf("grad row %d sums to %v", r, s)
		}
	}
}

func TestSoftmaxCrossEntropyGradFiniteDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	logits := tensor.RandNormal(rng, 1, 4, 5)
	labels := tensor.FromSlice([]float32{0, 2, 4, 1}, 4)
	_, grad := SoftmaxCrossEntropy{}.Compute(logits, labels)
	const eps = 1e-3
	for i := 0; i < logits.Len(); i += 3 {
		orig := logits.Data()[i]
		logits.Data()[i] = orig + eps
		lp, _ := SoftmaxCrossEntropy{}.Compute(logits, labels)
		logits.Data()[i] = orig - eps
		lm, _ := SoftmaxCrossEntropy{}.Compute(logits, labels)
		logits.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(grad.Data()[i])) > 1e-3 {
			t.Fatalf("grad[%d]: numeric %v vs analytic %v", i, num, grad.Data()[i])
		}
	}
}

func TestCrossEntropyTokenLevel(t *testing.T) {
	// [batch=2, seq=3, classes=2] with [2,3] labels exercises the NER path.
	rng := rand.New(rand.NewSource(2))
	logits := tensor.RandNormal(rng, 1, 2, 3, 2)
	labels := tensor.FromSlice([]float32{0, 1, 0, 1, 1, 0}, 2, 3)
	loss, grad := SoftmaxCrossEntropy{}.Compute(logits, labels)
	if loss <= 0 {
		t.Error("random logits should have positive loss")
	}
	if !tensor.ShapeEq(grad.Shape(), logits.Shape()) {
		t.Errorf("grad shape %v", grad.Shape())
	}
	acc := SoftmaxCrossEntropy{}.Accuracy(logits, labels)
	if acc < 0 || acc > 1 {
		t.Errorf("accuracy %v out of range", acc)
	}
}

func TestAccuracyExact(t *testing.T) {
	logits := tensor.FromSlice([]float32{1, 0, 0, 1, 0.6, 0.4}, 3, 2)
	labels := tensor.FromSlice([]float32{0, 1, 1}, 3)
	acc := SoftmaxCrossEntropy{}.Accuracy(logits, labels)
	if math.Abs(acc-2.0/3) > 1e-9 {
		t.Errorf("accuracy = %v, want 2/3", acc)
	}
}

// trainToy fits y = argmax over a linear map of x, returning final loss.
func trainToy(t *testing.T, opt Optimizer, steps int) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	m := graph.NewModel("toy")
	in := m.AddInput("in", 4)
	h := m.AddNode("h", layers.NewDense(4, 16, layers.ActTanh, 5), in)
	h.Trainable = true
	o := m.AddNode("o", layers.NewDense(16, 3, layers.ActNone, 6), h)
	o.Trainable = true
	m.SetOutputs(o)

	// Planted linear task.
	n := 64
	x := tensor.RandNormal(rng, 1, n, 4)
	y := tensor.New(n)
	for r := 0; r < n; r++ {
		xr := x.Row(r)
		s0 := xr[0] + xr[1]
		s1 := xr[2] - xr[3]
		switch {
		case s0 > s1 && s0 > 0:
			y.Data()[r] = 0
		case s1 > 0:
			y.Data()[r] = 1
		default:
			y.Data()[r] = 2
		}
	}

	var loss float64
	for i := 0; i < steps; i++ {
		tape, err := m.Forward(map[string]*tensor.Tensor{"in": x}, true)
		if err != nil {
			t.Fatal(err)
		}
		var grad *tensor.Tensor
		loss, grad = SoftmaxCrossEntropy{}.Compute(tape.Output(o), y)
		if err := tape.Backward(map[string]*tensor.Tensor{"o": grad}); err != nil {
			t.Fatal(err)
		}
		opt.Step(tape.ParamGrads())
	}
	return loss
}

func TestSGDConverges(t *testing.T) {
	final := trainToy(t, NewSGD(0.5, 0.9), 150)
	if final > 0.25 {
		t.Errorf("SGD final loss %v, want < 0.25", final)
	}
}

func TestAdamConverges(t *testing.T) {
	final := trainToy(t, NewAdam(0.01), 150)
	if final > 0.25 {
		t.Errorf("Adam final loss %v, want < 0.25", final)
	}
}

func TestAdamBeatsUntrained(t *testing.T) {
	initial := trainToy(t, NewAdam(0), 1) // zero LR: no learning
	trained := trainToy(t, NewAdam(0.01), 100)
	if trained >= initial {
		t.Errorf("training did not reduce loss: %v -> %v", initial, trained)
	}
}

func TestOptimizerCloneFreshState(t *testing.T) {
	o := NewAdam(0.01)
	p := graph.NewParamNormal("w", 1, 1, 2)
	g := tensor.FromSlice([]float32{1, 1}, 2)
	o.Step(map[*graph.Param]*tensor.Tensor{p: g})
	c := o.Clone().(*Adam)
	if c.t != 0 || len(c.m) != 0 {
		t.Error("clone must start with fresh state")
	}
	if c.LR != o.LR {
		t.Error("clone must keep hyperparameters")
	}
}

func TestOptimizerStateBytes(t *testing.T) {
	p := graph.NewParamNormal("w", 1, 1, 10)
	params := []*graph.Param{p}
	if got := NewSGD(0.1, 0).StateBytes(params); got != 0 {
		t.Errorf("plain SGD state = %d, want 0", got)
	}
	if got := NewSGD(0.1, 0.9).StateBytes(params); got != 40 {
		t.Errorf("momentum SGD state = %d, want 40", got)
	}
	if got := NewAdam(0.1).StateBytes(params); got != 80 {
		t.Errorf("adam state = %d, want 80", got)
	}
}

func TestBatchesCoverAllRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	batches := Batches(10, 3, rng)
	if len(batches) != 4 {
		t.Fatalf("got %d batches, want 4", len(batches))
	}
	seen := map[int]bool{}
	for _, b := range batches {
		for _, i := range b {
			if seen[i] {
				t.Fatalf("index %d appears twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 10 {
		t.Errorf("covered %d records, want 10", len(seen))
	}
	if len(batches[3]) != 1 {
		t.Errorf("last batch size %d, want 1", len(batches[3]))
	}
}

func TestGather(t *testing.T) {
	x := tensor.FromSlice([]float32{0, 0, 1, 1, 2, 2, 3, 3}, 4, 2)
	g := Gather(x, []int{2, 0})
	if g.At(0, 0) != 2 || g.At(1, 1) != 0 {
		t.Errorf("gather = %v", g.Data())
	}
	if !tensor.ShapeEq(g.Shape(), []int{2, 2}) {
		t.Errorf("gather shape = %v", g.Shape())
	}
}

func TestBatchesDeterministicPerSeed(t *testing.T) {
	a := Batches(20, 4, rand.New(rand.NewSource(9)))
	b := Batches(20, 4, rand.New(rand.NewSource(9)))
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("same seed must produce same batch order")
			}
		}
	}
}
