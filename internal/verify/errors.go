package verify

import (
	"errors"
	"fmt"
)

// Kind classifies plan-verification failures by the invariant family they
// violate, so callers can react programmatically (retry with a larger
// budget, drop an offending candidate, refuse an evolution event) instead
// of string-matching error text.
type Kind string

// Verification failure kinds.
const (
	// KindModel: the model graph itself is malformed — cyclic, shape-
	// inconsistent, or violating the materializable-frontier closure of
	// Definition 2.4.
	KindModel Kind = "model"
	// KindLegality: a reuse plan breaks Definition 4.5 — missing actions,
	// pruned inputs of computed nodes, loads outside V, and similar.
	KindLegality Kind = "legality"
	// KindCost: a reported cost or footprint disagrees with its recomputed
	// value (Equations 5 and 6).
	KindCost Kind = "cost"
	// KindFusion: a fused group breaks the fusion conditions — mixed batch
	// sizes or epoch counts, or non-materializable shared nodes
	// (Definition 4.3).
	KindFusion Kind = "fusion"
	// KindBudget: a plan exceeds B_disk or B_mem.
	KindBudget Kind = "budget"
	// KindPartition: the training plan is not a partition of the workload —
	// a candidate trained zero times or more than once, or missing a plan.
	KindPartition Kind = "partition"
)

// PlanError is the typed verification failure every check in this package
// returns. It travels through core.PlanWorkload and the evolution events of
// core.ModelSelection wrapped with %w, so callers recover it (and its Kind,
// Group, and Node context) via errors.As.
type PlanError struct {
	// Kind is the violated invariant family.
	Kind Kind
	// Model names the model whose graph or plan is at fault ("" if not
	// model-scoped).
	Model string
	// Group names the fusion group the failure occurred in ("" outside
	// group checks).
	Group string
	// Node names the offending graph node ("" if the failure is not
	// node-scoped).
	Node string
	// Err is the wrapped cause, when the failure surfaced while checking a
	// nested structure (a group's plan, a MatResult's per-model plan).
	Err error

	msg string
}

// Error implements error.
func (e *PlanError) Error() string { return e.msg }

// Unwrap exposes the wrapped cause for errors.Is/As chains.
func (e *PlanError) Unwrap() error { return e.Err }

// planErrf builds a PlanError with a formatted message. The message keeps
// the package's established "verify: ..." phrasing so logs and tests stay
// stable across the typed-error migration.
func planErrf(kind Kind, format string, args ...any) *PlanError {
	return &PlanError{Kind: kind, msg: fmt.Sprintf(format, args...)}
}

// withModel, withGroup, and withNode attach location context.
func (e *PlanError) withModel(name string) *PlanError { e.Model = name; return e }
func (e *PlanError) withGroup(name string) *PlanError { e.Group = name; return e }
func (e *PlanError) withNode(name string) *PlanError  { e.Node = name; return e }

// wrapGroup wraps a nested verification failure with the enclosing group's
// name, propagating the inner Kind (and Node/Model context) outward so
// errors.As on the outermost error still reports the root cause's kind.
func wrapGroup(group string, err error) error {
	out := &PlanError{Kind: KindLegality, Group: group, Err: err, msg: fmt.Sprintf("group(%s): %v", group, err)}
	var pe *PlanError
	if errors.As(err, &pe) {
		out.Kind = pe.Kind
		out.Model = pe.Model
		out.Node = pe.Node
	}
	return out
}
