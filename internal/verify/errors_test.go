package verify_test

import (
	"errors"
	"fmt"
	"testing"

	"nautilus/internal/graph"
	"nautilus/internal/mmg"
	"nautilus/internal/opt"
	"nautilus/internal/profile"
	"nautilus/internal/verify"
)

// asPlanError asserts the error carries a *verify.PlanError (possibly
// wrapped) of the wanted kind and returns it.
func asPlanError(t *testing.T, err error, kind verify.Kind) *verify.PlanError {
	t.Helper()
	var pe *verify.PlanError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *verify.PlanError", err)
	}
	if pe.Kind != kind {
		t.Fatalf("PlanError.Kind = %q, want %q (err: %v)", pe.Kind, kind, err)
	}
	return pe
}

// TestPlanErrorKinds checks every failure class surfaces a typed PlanError
// with the right kind and location fields — including through fmt.Errorf
// %w wrapping, the path core takes.
func TestPlanErrorKinds(t *testing.T) {
	t.Run("model cycle", func(t *testing.T) {
		m, _ := chainModel(t, "cyc", 1)
		m.Node("f1").Parents[0] = m.Node("head")
		pe := asPlanError(t, verify.Model(m), verify.KindModel)
		if pe.Model != "cyc" || pe.Node == "" {
			t.Errorf("location fields not set: %+v", pe)
		}
	})
	t.Run("illegal load", func(t *testing.T) {
		m, prof := chainModel(t, "load", 2)
		plan := opt.CurrentPracticePlan(prof)
		f1 := m.Node("f1")
		plan.CostPerRecord += prof.Layers[f1].LoadFLOPs - prof.Layers[f1].CompFLOPs
		plan.Actions[f1] = opt.Loaded
		err := fmt.Errorf("core: training plan rejected: %w", verify.Plan(plan, map[graph.Signature]bool{}))
		pe := asPlanError(t, err, verify.KindLegality)
		if pe.Node != "f1" {
			t.Errorf("PlanError.Node = %q, want %q", pe.Node, "f1")
		}
	})
	t.Run("cost mismatch", func(t *testing.T) {
		_, prof := chainModel(t, "cost", 3)
		plan := opt.CurrentPracticePlan(prof)
		plan.CostPerRecord++
		asPlanError(t, verify.Plan(plan, nil), verify.KindCost)
	})
	t.Run("mixed batch fusion", func(t *testing.T) {
		m1, p1 := chainModel(t, "fa", 4)
		m2, p2 := chainModel(t, "fb", 5)
		g := buildGroup(t, []opt.WorkItem{
			{Model: m1, Prof: p1, Epochs: 2, BatchSize: 16},
			{Model: m2, Prof: p2, Epochs: 2, BatchSize: 32},
		})
		pe := asPlanError(t, verify.Group(g, 0, nil), verify.KindFusion)
		if pe.Group == "" {
			t.Errorf("PlanError.Group not set: %+v", pe)
		}
	})
	t.Run("memory budget", func(t *testing.T) {
		m1, p1 := chainModel(t, "ba", 6)
		m2, p2 := chainModel(t, "bb", 7)
		g := buildGroup(t, []opt.WorkItem{
			{Model: m1, Prof: p1, Epochs: 2, BatchSize: 16},
			{Model: m2, Prof: p2, Epochs: 2, BatchSize: 16},
		})
		g.PeakMemBytes = 1 << 40
		asPlanError(t, verify.Group(g, 1<<30, nil), verify.KindBudget)
	})
	t.Run("partition", func(t *testing.T) {
		m1, p1 := chainModel(t, "pa", 8)
		m2, p2 := chainModel(t, "pb", 9)
		i1 := opt.WorkItem{Model: m1, Prof: p1, Epochs: 2, BatchSize: 16}
		i2 := opt.WorkItem{Model: m2, Prof: p2, Epochs: 2, BatchSize: 16}
		g1 := buildGroup(t, []opt.WorkItem{i1})
		asPlanError(t, verify.Groups([]*opt.FusedGroup{g1}, []opt.WorkItem{i1, i2}, 0, nil), verify.KindPartition)
	})
	t.Run("disk budget", func(t *testing.T) {
		m, prof := chainModel(t, "disk", 10)
		f1 := m.Node("f1")
		const records = 100
		plan := opt.CurrentPracticePlan(prof)
		item := opt.WorkItem{Model: m, Prof: prof, Epochs: 2, BatchSize: 16}
		res := &opt.MatResult{
			Materialized: []opt.MatCandidate{{
				Node: f1, Sig: prof.Sigs[f1], BytesPerRec: prof.Layers[f1].OutBytes, SharedBy: 1,
			}},
			Sigs:           map[graph.Signature]bool{prof.Sigs[f1]: true},
			Plans:          map[*graph.Model]*opt.Plan{m: plan},
			TotalCostFLOPs: plan.CostPerRecord * records * 2,
			StorageBytes:   prof.Layers[f1].OutBytes * records,
		}
		cfg := opt.MatConfig{MaxRecords: records, DiskBudgetBytes: res.StorageBytes - 1}
		asPlanError(t, verify.MatResult(res, []opt.WorkItem{item}, cfg), verify.KindBudget)
	})
}

// loadingGroup builds a singleton group whose plan loads f1 from V, so the
// group's legality depends on loadable membership.
func loadingGroup(t *testing.T, name string, seed int64) (*opt.FusedGroup, []opt.WorkItem, graph.Signature) {
	t.Helper()
	m, prof := chainModel(t, name, seed)
	mm, err := mmg.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	mprof, err := profile.Profile(mm.Graph, prof.HW)
	if err != nil {
		t.Fatal(err)
	}
	f1 := mm.NodeOf[m][m.Node("f1")]
	if f1 == nil {
		t.Fatal("merged graph lost node f1")
	}
	plan := opt.CurrentPracticePlan(mprof)
	plan.CostPerRecord += mprof.Layers[f1].LoadFLOPs - mprof.Layers[f1].CompFLOPs
	plan.Actions[f1] = opt.Loaded
	items := []opt.WorkItem{{Model: m, Prof: prof, Epochs: 2, BatchSize: 16}}
	return &opt.FusedGroup{Items: items, MM: mm, Plan: plan, PeakMemBytes: 1}, items, mprof.Sigs[f1]
}

// TestGroupsIncrementalMemoizes checks the planner session's incremental
// re-verification contract: an unchanged group is checked once per seen
// set, and the skip is invalidated when V stops covering its loads.
func TestGroupsIncrementalMemoizes(t *testing.T) {
	g, items, sig := loadingGroup(t, "inc", 500)
	groups := []*opt.FusedGroup{g}
	loadable := map[graph.Signature]bool{sig: true}
	seen := map[string]bool{}

	checked, err := verify.GroupsIncremental(groups, items, 0, loadable, seen)
	if err != nil {
		t.Fatal(err)
	}
	if checked != 1 {
		t.Fatalf("first pass checked %d groups, want 1", checked)
	}
	// Same plan, same V: the group is fingerprint-identical and skipped.
	checked, err = verify.GroupsIncremental(groups, items, 0, loadable, seen)
	if err != nil {
		t.Fatal(err)
	}
	if checked != 0 {
		t.Errorf("second pass checked %d groups, want 0 (memoized)", checked)
	}
	// V evolved away from the group's loaded signature: the skip no longer
	// applies and full verification catches the now-illegal load.
	checked, err = verify.GroupsIncremental(groups, items, 0, map[graph.Signature]bool{}, seen)
	if checked != 1 {
		t.Errorf("shrunk-V pass checked %d groups, want 1", checked)
	}
	asPlanError(t, err, verify.KindLegality)

	// nil seen disables memoization entirely.
	checked, err = verify.GroupsIncremental(groups, items, 0, loadable, nil)
	if err != nil || checked != 1 {
		t.Errorf("nil-seen pass checked %d (%v), want full verification", checked, err)
	}
}
