// Package verify statically checks optimizer outputs before anything is
// executed or written to storage. The optimizer (internal/opt) produces
// reuse plans, fusion groups, and materialization sets whose legality rests
// on paper invariants — Definition 2.4 (materializable frontier),
// Definition 4.3 (shared frozen sub-expressions), Definition 4.5 (reuse
// plans), and the B_disk / B_mem budgets. Solver bugs that violate them
// would otherwise surface as silent wrong training results or storage blow-
// ups deep inside execution; this package turns them into typed PlanErrors
// at planning time. core.PlanWorkload (and through it every Fit cycle) runs
// these checks on each plan it emits; the planner session re-checks only
// groups whose plan changed via GroupsIncremental.
package verify

import (
	"sort"

	"nautilus/internal/graph"
	"nautilus/internal/opt"
)

// Model checks DAG well-formedness of a model: it must be acyclic, pass
// structural validation with consistent shapes end to end, and have a
// materializable set that is frozen-prefix-closed per Definition 2.4 (a
// materializable node is an input, or frozen with every parent
// materializable).
func Model(m *graph.Model) error {
	if m == nil {
		return planErrf(KindModel, "verify: nil model")
	}
	if err := acyclic(m); err != nil {
		return err
	}
	if err := validateShapes(m); err != nil {
		return err
	}
	mat := m.Materializable()
	for _, n := range m.Nodes() {
		if !mat[n] {
			continue
		}
		if n.IsInput() {
			continue
		}
		if !n.Frozen() {
			return planErrf(KindModel, "verify: model %q: node %q marked materializable but is trainable (Definition 2.4)", m.Name, n.Name).
				withModel(m.Name).withNode(n.Name)
		}
		for _, p := range n.Parents {
			if !mat[p] {
				return planErrf(KindModel, "verify: model %q: node %q marked materializable but parent %q is not (Definition 2.4)", m.Name, n.Name, p.Name).
					withModel(m.Name).withNode(n.Name)
			}
		}
	}
	return nil
}

// acyclic runs a three-color DFS over the Parents edges of every node.
func acyclic(m *graph.Model) error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[*graph.Node]int{}
	var visit func(n *graph.Node) error
	visit = func(n *graph.Node) error {
		switch color[n] {
		case gray:
			return planErrf(KindModel, "verify: model %q: cycle through node %q", m.Name, n.Name).
				withModel(m.Name).withNode(n.Name)
		case black:
			return nil
		}
		color[n] = gray
		for _, p := range n.Parents {
			if err := visit(p); err != nil {
				return err
			}
		}
		color[n] = black
		return nil
	}
	for _, n := range m.Nodes() {
		if err := visit(n); err != nil {
			return err
		}
	}
	return nil
}

// validateShapes runs Model.Validate, converting its shape-inference panics
// into errors.
func validateShapes(m *graph.Model) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = planErrf(KindModel, "verify: model %q: %v", m.Name, r).withModel(m.Name)
		}
	}()
	if _, verr := m.Validate(); verr != nil {
		err = planErrf(KindModel, "verify: model %q: %v", m.Name, verr).withModel(m.Name)
		err.(*PlanError).Err = verr
	}
	return err
}

// Plan checks a reuse plan (Definition 4.5) against its model. loadable is
// the materialized set V the plan was solved under, indexed by expression
// signature; pass nil to skip the membership check (baselines that load
// the full materializable frontier).
//
// Invariants: every reachable node has an action; no output is pruned;
// every computed node's parents are retained (loaded or computed); every
// loaded non-input node is materializable per Definition 2.4 and, when
// loadable is given, a member of V; and CostPerRecord equals the
// recomputed Σ computed·c_comp + loaded·c_load of Equation 5.
func Plan(p *opt.Plan, loadable map[graph.Signature]bool) error {
	if p == nil {
		return planErrf(KindLegality, "verify: nil plan")
	}
	m := p.Model()
	if err := Model(m); err != nil {
		return err
	}
	mat := m.Materializable()
	var cost int64
	for _, n := range m.Reachable() {
		a, ok := p.Actions[n]
		if !ok {
			return planErrf(KindLegality, "verify: plan(%s): node %q has no action", m.Name, n.Name).
				withModel(m.Name).withNode(n.Name)
		}
		switch a {
		case opt.Pruned:
			// Legality is judged from the consumers' side below.
		case opt.Computed:
			if n.IsInput() {
				return planErrf(KindLegality, "verify: plan(%s): input %q marked computed", m.Name, n.Name).
					withModel(m.Name).withNode(n.Name)
			}
			cost += p.Prof.Layers[n].CompFLOPs
			for _, par := range n.Parents {
				if p.Actions[par] == opt.Pruned {
					return planErrf(KindLegality, "verify: plan(%s): node %q is computed but its input %q is pruned", m.Name, n.Name, par.Name).
						withModel(m.Name).withNode(n.Name)
				}
			}
		case opt.Loaded:
			cost += p.Prof.Layers[n].LoadFLOPs
			if n.IsInput() {
				continue // dataset inputs are always loadable
			}
			if !mat[n] {
				return planErrf(KindLegality, "verify: plan(%s): node %q is loaded but not materializable (Definition 2.4)", m.Name, n.Name).
					withModel(m.Name).withNode(n.Name)
			}
			if loadable != nil && !loadable[p.Prof.Sigs[n]] {
				return planErrf(KindLegality, "verify: plan(%s): node %q (sig %s) is loaded but not in the materialized set V", m.Name, n.Name, p.Prof.Sigs[n]).
					withModel(m.Name).withNode(n.Name)
			}
		default:
			return planErrf(KindLegality, "verify: plan(%s): node %q has unknown action %v", m.Name, n.Name, a).
				withModel(m.Name).withNode(n.Name)
		}
	}
	for _, o := range m.Outputs {
		if p.Actions[o] == opt.Pruned {
			return planErrf(KindLegality, "verify: plan(%s): output %q is pruned", m.Name, o.Name).
				withModel(m.Name).withNode(o.Name)
		}
	}
	if cost != p.CostPerRecord {
		return planErrf(KindCost, "verify: plan(%s): CostPerRecord %d does not match recomputed cost %d (Equation 5)", m.Name, p.CostPerRecord, cost).
			withModel(m.Name)
	}
	return nil
}

// Group checks one fusion group: non-empty, uniform batch size and epoch
// count across its items (fused branches train on shared mini-batches in
// one loop), a legal reuse plan over the merged graph, merged shared nodes
// confined to the materializable frontier (Definition 4.3: only shared
// frozen sub-expressions fuse), and — when both the estimate and the
// budget are known — peak memory within B_mem.
func Group(g *opt.FusedGroup, memBudgetBytes int64, loadable map[graph.Signature]bool) error {
	if g == nil {
		return planErrf(KindFusion, "verify: nil fusion group")
	}
	if len(g.Items) == 0 {
		return planErrf(KindFusion, "verify: fusion group has no items")
	}
	name := g.Items[0].Model.Name
	batch, epochs := g.Items[0].BatchSize, g.Items[0].Epochs
	for _, it := range g.Items[1:] {
		if it.BatchSize != batch {
			return planErrf(KindFusion, "verify: group(%s): mixed batch sizes %d and %d (item %q)", name, batch, it.BatchSize, it.Model.Name).
				withGroup(name).withModel(it.Model.Name)
		}
		if it.Epochs != epochs {
			return planErrf(KindFusion, "verify: group(%s): mixed epoch counts %d and %d (item %q)", name, epochs, it.Epochs, it.Model.Name).
				withGroup(name).withModel(it.Model.Name)
		}
	}
	if g.MM == nil {
		return planErrf(KindFusion, "verify: group(%s): missing merged graph", name).withGroup(name)
	}
	for _, it := range g.Items {
		if g.MM.NodeOf[it.Model] == nil {
			return planErrf(KindFusion, "verify: group(%s): item %q is not part of the merged graph", name, it.Model.Name).
				withGroup(name).withModel(it.Model.Name)
		}
	}
	if err := Plan(g.Plan, loadable); err != nil {
		return wrapGroup(name, err)
	}
	mat := g.MM.Graph.Materializable()
	for _, n := range g.MM.Graph.Nodes() {
		if g.MM.SharedCount(n) > 1 && !mat[n] && !n.IsInput() {
			return planErrf(KindFusion, "verify: group(%s): merged node %q is shared by %d models but not materializable (Definition 4.3)", name, n.Name, g.MM.SharedCount(n)).
				withGroup(name).withNode(n.Name)
		}
	}
	// B_mem constrains fusion decisions (Algorithm 1); a singleton group is
	// the unfused baseline and stands even if it alone exceeds the budget.
	if len(g.Items) > 1 && memBudgetBytes > 0 && g.PeakMemBytes > memBudgetBytes {
		return planErrf(KindBudget, "verify: group(%s): estimated peak memory %d exceeds B_mem %d", name, g.PeakMemBytes, memBudgetBytes).
			withGroup(name)
	}
	return nil
}

// Groups checks a full training plan: every group legal and the groups a
// partition of the workload — each work item trained exactly once.
func Groups(groups []*opt.FusedGroup, items []opt.WorkItem, memBudgetBytes int64, loadable map[graph.Signature]bool) error {
	_, err := GroupsIncremental(groups, items, memBudgetBytes, loadable, nil)
	return err
}

// GroupsIncremental is Groups with memoized per-group checks, the planner
// session's re-verification path for workload evolution: a group whose
// opt.FusedGroup Fingerprint is already in seen — and whose loaded
// signatures all remain members of loadable — was verified under an earlier
// plan with an identical reuse plan, so re-checking it cannot change the
// outcome and is skipped. Every group actually checked (and passing) has
// its fingerprint added to seen. The workload-partition check always runs
// in full (it is global and cheap).
//
// seen must be scoped to one budget configuration: the fingerprint does not
// encode B_mem, so reuse a seen set only while the budgets are unchanged.
// Pass nil to disable memoization (full verification, seen not updated).
//
// It returns the number of groups fully re-checked this call.
func GroupsIncremental(groups []*opt.FusedGroup, items []opt.WorkItem, memBudgetBytes int64, loadable map[graph.Signature]bool, seen map[string]bool) (checked int, err error) {
	for _, g := range groups {
		fp := ""
		if seen != nil && g != nil && g.Plan != nil {
			fp = g.Fingerprint()
			if seen[fp] && loadedCovered(g, loadable) {
				continue
			}
		}
		checked++
		if err := Group(g, memBudgetBytes, loadable); err != nil {
			return checked, err
		}
		if fp != "" {
			seen[fp] = true
		}
	}
	return checked, partition(groups, items)
}

// loadedCovered reports whether every materialized intermediate the group's
// plan loads is still a member of loadable — the only Group invariant that
// can silently flip for an unchanged plan when V evolves.
func loadedCovered(g *opt.FusedGroup, loadable map[graph.Signature]bool) bool {
	if loadable == nil {
		return true
	}
	for _, n := range g.Plan.LoadedNodes() {
		if !loadable[g.Plan.Prof.Sigs[n]] {
			return false
		}
	}
	return true
}

// partition checks that the groups train each work item exactly once.
func partition(groups []*opt.FusedGroup, items []opt.WorkItem) error {
	seen := map[*graph.Model]int{}
	for _, g := range groups {
		for _, it := range g.Items {
			seen[it.Model]++
		}
	}
	var missing, dup []string
	for _, it := range items {
		switch seen[it.Model] {
		case 0:
			missing = append(missing, it.Model.Name)
		case 1:
		default:
			dup = append(dup, it.Model.Name)
		}
	}
	sort.Strings(missing)
	sort.Strings(dup)
	if len(missing) > 0 {
		return planErrf(KindPartition, "verify: plan trains no group for model(s) %v", missing)
	}
	if len(dup) > 0 {
		return planErrf(KindPartition, "verify: plan trains model(s) %v more than once", dup)
	}
	return nil
}

// MatResult checks the materialization optimizer's output: the chosen set
// and its signature index agree, the storage footprint is correctly summed
// and within B_disk, every work item has a reuse plan that is legal under
// the chosen set, and the reported total cost matches Equation 6.
func MatResult(res *opt.MatResult, items []opt.WorkItem, cfg opt.MatConfig) error {
	if res == nil {
		return planErrf(KindLegality, "verify: nil materialization result")
	}
	sigs := map[graph.Signature]bool{}
	var storage int64
	for _, c := range res.Materialized {
		if sigs[c.Sig] {
			return planErrf(KindLegality, "verify: materialized set lists sig %s twice", c.Sig).withNode(c.Node.Name)
		}
		sigs[c.Sig] = true
		if !res.Sigs[c.Sig] {
			return planErrf(KindLegality, "verify: materialized node %q (sig %s) missing from Sigs index", c.Node.Name, c.Sig).withNode(c.Node.Name)
		}
		storage += c.BytesPerRec * int64(cfg.MaxRecords)
	}
	for s := range res.Sigs {
		if res.Sigs[s] && !sigs[s] {
			return planErrf(KindLegality, "verify: Sigs index lists sig %s absent from the materialized set", s)
		}
	}
	if storage != res.StorageBytes {
		return planErrf(KindCost, "verify: StorageBytes %d does not match recomputed footprint %d", res.StorageBytes, storage)
	}
	if cfg.DiskBudgetBytes > 0 && storage > cfg.DiskBudgetBytes {
		return planErrf(KindBudget, "verify: storage footprint %d exceeds B_disk %d", storage, cfg.DiskBudgetBytes)
	}
	var total int64
	for _, it := range items {
		plan, ok := res.Plans[it.Model]
		if !ok {
			return planErrf(KindPartition, "verify: no reuse plan for model %q", it.Model.Name).withModel(it.Model.Name)
		}
		if err := Plan(plan, res.Sigs); err != nil {
			return err
		}
		total += plan.CostPerRecord * int64(cfg.MaxRecords) * int64(it.Epochs)
	}
	if total != res.TotalCostFLOPs {
		return planErrf(KindCost, "verify: TotalCostFLOPs %d does not match recomputed cost %d (Equation 6)", res.TotalCostFLOPs, total)
	}
	return nil
}
