package verify_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"nautilus/internal/graph"
	"nautilus/internal/layers"
	"nautilus/internal/mmg"
	"nautilus/internal/opt"
	"nautilus/internal/profile"
	"nautilus/internal/verify"
)

// chainModel builds in → f1 (frozen) → f2 (frozen) → head (trainable):
// a minimal model with a two-deep materializable frontier.
func chainModel(t *testing.T, name string, seed int64) (*graph.Model, *profile.ModelProfile) {
	t.Helper()
	m := graph.NewModel(name)
	in := m.AddInput("in", 8)
	f1 := m.AddNode("f1", layers.NewDense(8, 8, layers.ActNone, seed), in)
	f2 := m.AddNode("f2", layers.NewDense(8, 8, layers.ActNone, seed+1), f1)
	head := m.AddNode("head", layers.NewDense(8, 4, layers.ActNone, seed+2), f2)
	head.Trainable = true
	m.SetOutputs(head)
	prof, err := profile.Profile(m, profile.DefaultHardware())
	if err != nil {
		t.Fatal(err)
	}
	return m, prof
}

func wantErr(t *testing.T, err error, substr string) {
	t.Helper()
	if err == nil {
		t.Fatalf("verification accepted an illegal input; want error containing %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not contain %q", err, substr)
	}
}

// TestRejectsCyclicDAG mutates a node's Parents to close a cycle and
// checks the verifier names the offending node.
func TestRejectsCyclicDAG(t *testing.T) {
	m, _ := chainModel(t, "cyclic", 1)
	f1, head := m.Node("f1"), m.Node("head")
	f1.Parents[0] = head // in → f1 → f2 → head → f1: a cycle
	wantErr(t, verify.Model(m), "cycle through node")
}

// TestRejectsShapeMismatch breaks shape consistency (a dense layer fed the
// wrong width) and checks the verifier converts the inference panic into a
// descriptive error.
func TestRejectsShapeMismatch(t *testing.T) {
	m := graph.NewModel("badshape")
	in := m.AddInput("in", 8)
	d := m.AddNode("d", layers.NewDense(5, 4, layers.ActNone, 1), in) // wants width 5, gets 8
	m.SetOutputs(d)
	wantErr(t, verify.Model(m), "shape inference failed")
}

// TestRejectsLoadOfNonMaterializedSig forces a plan to load an
// intermediate whose signature is not in V.
func TestRejectsLoadOfNonMaterializedSig(t *testing.T) {
	m, prof := chainModel(t, "loader", 10)
	plan := opt.CurrentPracticePlan(prof)
	f1 := m.Node("f1")
	plan.CostPerRecord += prof.Layers[f1].LoadFLOPs - prof.Layers[f1].CompFLOPs
	plan.Actions[f1] = opt.Loaded

	// Legal when V contains f1's signature...
	if err := verify.Plan(plan, map[graph.Signature]bool{prof.Sigs[f1]: true}); err != nil {
		t.Fatalf("plan loading a materialized sig rejected: %v", err)
	}
	// ...illegal against an empty V.
	wantErr(t, verify.Plan(plan, map[graph.Signature]bool{}), "not in the materialized set V")
}

// TestRejectsLoadOfNonMaterializableNode loads a trainable node — illegal
// regardless of V (Definition 2.4).
func TestRejectsLoadOfNonMaterializableNode(t *testing.T) {
	m, prof := chainModel(t, "trainload", 20)
	plan := opt.CurrentPracticePlan(prof)
	head := m.Node("head")
	plan.CostPerRecord += prof.Layers[head].LoadFLOPs - prof.Layers[head].CompFLOPs
	plan.Actions[head] = opt.Loaded
	wantErr(t, verify.Plan(plan, nil), "not materializable")
}

// TestRejectsComputedNodeWithPrunedInput prunes a node another computed
// node still consumes.
func TestRejectsComputedNodeWithPrunedInput(t *testing.T) {
	m, prof := chainModel(t, "pruned", 30)
	plan := opt.CurrentPracticePlan(prof)
	f1 := m.Node("f1")
	plan.CostPerRecord -= prof.Layers[f1].CompFLOPs
	plan.Actions[f1] = opt.Pruned
	wantErr(t, verify.Plan(plan, nil), "is pruned")
}

// TestRejectsPrunedOutput prunes a model output.
func TestRejectsPrunedOutput(t *testing.T) {
	_, prof := chainModel(t, "noout", 40)
	plan := opt.CurrentPracticePlan(prof)
	for n, a := range plan.Actions {
		if a == opt.Computed {
			plan.CostPerRecord -= prof.Layers[n].CompFLOPs
		} else {
			plan.CostPerRecord -= prof.Layers[n].LoadFLOPs
		}
		plan.Actions[n] = opt.Pruned
	}
	wantErr(t, verify.Plan(plan, nil), "output")
}

// TestRejectsCostMismatch corrupts the reported Equation-5 cost.
func TestRejectsCostMismatch(t *testing.T) {
	_, prof := chainModel(t, "cost", 50)
	plan := opt.CurrentPracticePlan(prof)
	plan.CostPerRecord++
	wantErr(t, verify.Plan(plan, nil), "Equation 5")
}

// buildGroup wraps items into a verified-shape FusedGroup the adversarial
// tests can then corrupt.
func buildGroup(t *testing.T, items []opt.WorkItem) *opt.FusedGroup {
	t.Helper()
	ms := make([]*graph.Model, len(items))
	for i, it := range items {
		ms[i] = it.Model
	}
	mm, err := mmg.Build(ms...)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profile.Profile(mm.Graph, items[0].Prof.HW)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := opt.SolveReusePlan(prof, map[graph.Signature]bool{})
	if err != nil {
		t.Fatal(err)
	}
	return &opt.FusedGroup{Items: items, MM: mm, Plan: plan, PeakMemBytes: 1}
}

// TestRejectsMixedBatchFusionGroup fuses two items with different batch
// sizes — illegal because fused branches train on shared mini-batches.
func TestRejectsMixedBatchFusionGroup(t *testing.T) {
	m1, p1 := chainModel(t, "a", 100)
	m2, p2 := chainModel(t, "b", 200)
	g := buildGroup(t, []opt.WorkItem{
		{Model: m1, Prof: p1, Epochs: 2, BatchSize: 16},
		{Model: m2, Prof: p2, Epochs: 2, BatchSize: 32},
	})
	wantErr(t, verify.Group(g, 0, nil), "mixed batch sizes")
}

// TestRejectsMixedEpochFusionGroup fuses two items with different epoch
// counts — illegal because the fused model runs one training loop.
func TestRejectsMixedEpochFusionGroup(t *testing.T) {
	m1, p1 := chainModel(t, "a", 100)
	m2, p2 := chainModel(t, "b", 200)
	g := buildGroup(t, []opt.WorkItem{
		{Model: m1, Prof: p1, Epochs: 2, BatchSize: 16},
		{Model: m2, Prof: p2, Epochs: 5, BatchSize: 16},
	})
	wantErr(t, verify.Group(g, 0, nil), "mixed epoch counts")
}

// TestRejectsOverBudgetFusedGroup checks B_mem enforcement on fused
// groups (and that singletons are exempt: they are the unfused baseline).
func TestRejectsOverBudgetFusedGroup(t *testing.T) {
	m1, p1 := chainModel(t, "a", 100)
	m2, p2 := chainModel(t, "b", 200)
	g := buildGroup(t, []opt.WorkItem{
		{Model: m1, Prof: p1, Epochs: 2, BatchSize: 16},
		{Model: m2, Prof: p2, Epochs: 2, BatchSize: 16},
	})
	g.PeakMemBytes = 1 << 40
	wantErr(t, verify.Group(g, 1<<30, nil), "exceeds B_mem")

	single := buildGroup(t, []opt.WorkItem{{Model: m1, Prof: p1, Epochs: 2, BatchSize: 16}})
	single.PeakMemBytes = 1 << 40
	if err := verify.Group(single, 1<<30, nil); err != nil {
		t.Fatalf("singleton group rejected for memory: %v", err)
	}
}

// TestRejectsIncompletePartition checks Groups demands every work item be
// trained exactly once.
func TestRejectsIncompletePartition(t *testing.T) {
	m1, p1 := chainModel(t, "a", 100)
	m2, p2 := chainModel(t, "b", 200)
	i1 := opt.WorkItem{Model: m1, Prof: p1, Epochs: 2, BatchSize: 16}
	i2 := opt.WorkItem{Model: m2, Prof: p2, Epochs: 2, BatchSize: 16}
	g1 := buildGroup(t, []opt.WorkItem{i1})
	g2 := buildGroup(t, []opt.WorkItem{i2})
	wantErr(t, verify.Groups([]*opt.FusedGroup{g1}, []opt.WorkItem{i1, i2}, 0, nil), "no group for model")
	wantErr(t, verify.Groups([]*opt.FusedGroup{g1, g1, g2}, []opt.WorkItem{i1, i2}, 0, nil), "more than once")
}

// TestRejectsOverBudgetMaterialization hand-builds a MatResult whose
// storage footprint exceeds B_disk.
func TestRejectsOverBudgetMaterialization(t *testing.T) {
	m, prof := chainModel(t, "mat", 300)
	f1 := m.Node("f1")
	const records = 100
	plan := opt.CurrentPracticePlan(prof)
	item := opt.WorkItem{Model: m, Prof: prof, Epochs: 2, BatchSize: 16}
	res := &opt.MatResult{
		Materialized: []opt.MatCandidate{{
			Node: f1, Sig: prof.Sigs[f1], BytesPerRec: prof.Layers[f1].OutBytes, SharedBy: 1,
		}},
		Sigs:           map[graph.Signature]bool{prof.Sigs[f1]: true},
		Plans:          map[*graph.Model]*opt.Plan{m: plan},
		TotalCostFLOPs: plan.CostPerRecord * records * 2,
		StorageBytes:   prof.Layers[f1].OutBytes * records,
	}
	cfg := opt.MatConfig{MaxRecords: records, DiskBudgetBytes: res.StorageBytes}
	if err := verify.MatResult(res, []opt.WorkItem{item}, cfg); err != nil {
		t.Fatalf("within-budget result rejected: %v", err)
	}
	cfg.DiskBudgetBytes = res.StorageBytes - 1
	wantErr(t, verify.MatResult(res, []opt.WorkItem{item}, cfg), "exceeds B_disk")
}

// TestRejectsInconsistentMatResult corrupts the Sigs index and the storage
// sum.
func TestRejectsInconsistentMatResult(t *testing.T) {
	m, prof := chainModel(t, "mat2", 400)
	f1 := m.Node("f1")
	const records = 10
	plan := opt.CurrentPracticePlan(prof)
	item := opt.WorkItem{Model: m, Prof: prof, Epochs: 1, BatchSize: 16}
	fresh := func() *opt.MatResult {
		return &opt.MatResult{
			Materialized: []opt.MatCandidate{{
				Node: f1, Sig: prof.Sigs[f1], BytesPerRec: prof.Layers[f1].OutBytes, SharedBy: 1,
			}},
			Sigs:           map[graph.Signature]bool{prof.Sigs[f1]: true},
			Plans:          map[*graph.Model]*opt.Plan{m: plan},
			TotalCostFLOPs: plan.CostPerRecord * records,
			StorageBytes:   prof.Layers[f1].OutBytes * records,
		}
	}
	cfg := opt.MatConfig{MaxRecords: records, DiskBudgetBytes: 1 << 40}

	res := fresh()
	res.StorageBytes++
	wantErr(t, verify.MatResult(res, []opt.WorkItem{item}, cfg), "recomputed footprint")

	res = fresh()
	res.Sigs[graph.Signature(12345)] = true
	wantErr(t, verify.MatResult(res, []opt.WorkItem{item}, cfg), "absent from the materialized set")

	res = fresh()
	res.TotalCostFLOPs++
	wantErr(t, verify.MatResult(res, []opt.WorkItem{item}, cfg), "Equation 6")
}

// randomWorkload builds nModels random feature-transfer-style candidates
// sharing a frozen trunk of random depth, with randomized widths, batch
// sizes, and epochs — the optimizer input for the property test.
func randomWorkload(t *testing.T, rng *rand.Rand, nModels int) []opt.WorkItem {
	t.Helper()
	trunkDepth := 1 + rng.Intn(3)
	trunkW := 4 + rng.Intn(8)
	trunkSeeds := make([]int64, trunkDepth)
	for i := range trunkSeeds {
		trunkSeeds[i] = rng.Int63()
	}
	batches := []int{8, 16}
	var items []opt.WorkItem
	for i := 0; i < nModels; i++ {
		m := graph.NewModel(fmt.Sprintf("rw%d", i))
		n := m.AddInput("in", trunkW)
		// Shared frozen trunk: identical seeds → identical signatures →
		// mmg merges these nodes across candidates.
		for d := 0; d < trunkDepth; d++ {
			n = m.AddNode(fmt.Sprintf("trunk%d", d), layers.NewDense(trunkW, trunkW, layers.ActNone, trunkSeeds[d]), n)
		}
		// Candidate-specific depth: possibly more frozen layers, then a
		// trainable head.
		w := trunkW
		extra := rng.Intn(3)
		for d := 0; d < extra; d++ {
			nw := 4 + rng.Intn(8)
			n = m.AddNode(fmt.Sprintf("mid%d", d), layers.NewDense(w, nw, layers.ActNone, rng.Int63()), n)
			w = nw
		}
		head := m.AddNode("head", layers.NewDense(w, 2, layers.ActNone, rng.Int63()), n)
		head.Trainable = true
		m.SetOutputs(head)
		prof, err := profile.Profile(m, profile.DefaultHardware())
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, opt.WorkItem{
			Model:     m,
			Prof:      prof,
			Epochs:    1 + rng.Intn(4),
			BatchSize: batches[rng.Intn(len(batches))],
		})
	}
	return items
}

// TestOptimizerOutputsAlwaysVerify is the property test: on random
// workloads, whatever OptimizeMaterialization and FuseModels emit must
// pass static verification under the budgets they were solved with.
func TestOptimizerOutputsAlwaysVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		items := randomWorkload(t, rng, 2+rng.Intn(3))
		ms := make([]*graph.Model, len(items))
		for i, it := range items {
			ms[i] = it.Model
		}
		mm, err := mmg.Build(ms...)
		if err != nil {
			t.Fatal(err)
		}
		solvers := []string{"bnb", "milp"}
		matCfg := opt.MatConfig{
			// Random budget: sometimes generous, sometimes tight, sometimes zero.
			DiskBudgetBytes: int64(rng.Intn(1 << 16)),
			MaxRecords:      1 + rng.Intn(200),
			Solver:          solvers[rng.Intn(len(solvers))],
		}
		res, err := opt.OptimizeMaterialization(mm, items, matCfg)
		if err != nil {
			t.Fatalf("trial %d: optimize: %v", trial, err)
		}
		if err := verify.MatResult(res, items, matCfg); err != nil {
			t.Fatalf("trial %d (solver %s): materialization output fails verification: %v", trial, matCfg.Solver, err)
		}
		memBudget := int64(1 + rng.Intn(1<<26))
		groups, err := opt.FuseModels(items, res.Sigs, opt.FuseConfig{
			MemBudgetBytes:     memBudget,
			OptimizerSlotBytes: 2,
		})
		if err != nil {
			t.Fatalf("trial %d: fuse: %v", trial, err)
		}
		if err := verify.Groups(groups, items, memBudget, res.Sigs); err != nil {
			t.Fatalf("trial %d: fusion output fails verification: %v", trial, err)
		}
	}
}
