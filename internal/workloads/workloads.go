// Package workloads defines the five end-to-end model-selection workloads
// of the paper's evaluation (Table 3): three feature-transfer grids over a
// BERT-style encoder (FTR-1/2/3), one adapter-training grid (ATR), and one
// fine-tuning grid over a ResNet-style CNN (FTU). Each workload builds at
// two scales: Paper (BERT-base / ResNet-50 topology, driven through the
// cost-clock simulator) and Mini (CPU-trainable miniatures exercising the
// identical code path with real training).
package workloads

import (
	"fmt"

	"nautilus/internal/data"
	"nautilus/internal/graph"
	"nautilus/internal/mmg"
	"nautilus/internal/models"
	"nautilus/internal/opt"
	"nautilus/internal/profile"
)

// Scale selects model and dataset sizing.
type Scale int

// Scales.
const (
	Mini Scale = iota
	Paper
)

func (s Scale) String() string {
	if s == Paper {
		return "paper"
	}
	return "mini"
}

// Approach names the transfer-learning scheme a workload uses.
type Approach string

// Transfer learning approaches (Section 2.4).
const (
	FeatureTransfer Approach = "feature_transfer"
	AdapterTraining Approach = "adapter_training"
	FineTuning      Approach = "fine_tuning"
)

// Spec declares one Table 3 workload: the architectural variants explored
// plus the common hyperparameter grid.
type Spec struct {
	Name     string
	Approach Approach
	// Strategies lists feature-transfer strategies (FTR-*).
	Strategies []models.FeatureStrategy
	// Depths lists top-k block counts: adapter placement depth (ATR) or
	// fine-tuned block count (FTU), at paper scale.
	Depths []int
	// MiniDepths are the equivalents at mini scale (same depth fractions
	// of the smaller trunk).
	MiniDepths []int
	// AdapterBottleneck is the Houlsby adapter width (ATR).
	AdapterBottleneck int

	BatchSizes []int
	LRs        []float64
	Epochs     []int
}

// NumModels returns the grid size |Q|.
func (s Spec) NumModels() int {
	v := len(s.Strategies)
	if v == 0 {
		v = len(s.Depths)
	}
	return v * len(s.BatchSizes) * len(s.LRs) * len(s.Epochs)
}

// The paper's hyperparameter grid: batch {16,32}, lr {5,3,2}×10⁻⁵.
var (
	paperBatches = []int{16, 32}
	paperLRs     = []float64{5e-5, 3e-5, 2e-5}
)

// FTR1 is feature transfer over all six strategies of Devlin et al.
// (36 models).
func FTR1() Spec {
	return Spec{
		Name:     "FTR-1",
		Approach: FeatureTransfer,
		Strategies: []models.FeatureStrategy{
			models.FeatEmbedding, models.FeatSecondLastHidden, models.FeatLastHidden,
			models.FeatSumLast4, models.FeatConcatLast4, models.FeatSumAll,
		},
		BatchSizes: paperBatches, LRs: paperLRs, Epochs: []int{5},
	}
}

// FTR2 is feature transfer over four strategies (24 models).
func FTR2() Spec {
	return Spec{
		Name:     "FTR-2",
		Approach: FeatureTransfer,
		Strategies: []models.FeatureStrategy{
			models.FeatSecondLastHidden, models.FeatLastHidden,
			models.FeatSumLast4, models.FeatConcatLast4,
		},
		BatchSizes: paperBatches, LRs: paperLRs, Epochs: []int{5},
	}
}

// FTR3 is feature transfer over one strategy with two epoch settings
// (12 models).
func FTR3() Spec {
	return Spec{
		Name:       "FTR-3",
		Approach:   FeatureTransfer,
		Strategies: []models.FeatureStrategy{models.FeatConcatLast4},
		BatchSizes: paperBatches, LRs: paperLRs, Epochs: []int{5, 10},
	}
}

// ATR is adapter training with adapters in the last {1,2,3,4} hidden
// blocks (24 models).
func ATR() Spec {
	return Spec{
		Name:              "ATR",
		Approach:          AdapterTraining,
		Depths:            []int{1, 2, 3, 4},
		MiniDepths:        []int{1, 2, 3, 4},
		AdapterBottleneck: 64,
		BatchSizes:        paperBatches, LRs: paperLRs, Epochs: []int{5},
	}
}

// FTU is ResNet fine-tuning of the last {3,6,9,12} residual blocks
// (24 models).
func FTU() Spec {
	return Spec{
		Name:       "FTU",
		Approach:   FineTuning,
		Depths:     []int{3, 6, 9, 12},
		MiniDepths: []int{1, 2, 3, 4},
		BatchSizes: paperBatches, LRs: paperLRs, Epochs: []int{5},
	}
}

// All returns the five Table 3 workloads in presentation order.
func All() []Spec {
	return []Spec{FTR1(), FTR2(), FTR3(), ATR(), FTU()}
}

// ByName looks up a workload spec.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// Instance is a built workload: the candidate set Q with profiles, the
// multi-model graph, and dataset parameters.
type Instance struct {
	Spec       Spec
	Scale      Scale
	Items      []opt.WorkItem
	MM         *mmg.MultiModel
	NumClasses int
	// InputName is the dataset input node's name in each candidate model.
	InputName string
}

// Build instantiates the workload at the given scale. Mini-scale learning
// rates are the paper's grid ×100, compensating for the miniatures' far
// smaller parameter counts.
func (s Spec) Build(scale Scale, hw profile.Hardware) (*Instance, error) {
	inst := &Instance{Spec: s, Scale: scale}
	lrScale := 1.0
	if scale == Mini {
		// Miniature models tolerate far larger steps than BERT-base;
		// fine-tuned conv stacks less so than fresh transformer heads.
		lrScale = 100
		if s.Approach == FineTuning {
			lrScale = 10
		}
	}

	type variant struct {
		label string
		build func(name string, headSeed int64) (*graph.Model, error)
	}
	var variants []variant

	switch s.Approach {
	case FeatureTransfer, AdapterTraining:
		cfg := models.BERTBase()
		if scale == Mini {
			cfg = models.BERTMini()
		}
		hub := models.NewBERTHub(cfg)
		inst.NumClasses = data.NERConfig{Types: 4}.NumClasses()
		inst.InputName = "ids"
		if s.Approach == FeatureTransfer {
			for _, strat := range s.Strategies {
				strat := strat
				variants = append(variants, variant{
					label: string(strat),
					build: func(name string, seed int64) (*graph.Model, error) {
						return hub.FeatureTransferModel(name, strat, inst.NumClasses, seed)
					},
				})
			}
		} else {
			depths := s.Depths
			if scale == Mini {
				depths = s.MiniDepths
			}
			for _, d := range depths {
				d := d
				variants = append(variants, variant{
					label: fmt.Sprintf("adapt%d", d),
					build: func(name string, seed int64) (*graph.Model, error) {
						return hub.AdapterModel(name, d, s.AdapterBottleneck, inst.NumClasses, seed)
					},
				})
			}
		}
	case FineTuning:
		cfg := models.ResNet50()
		if scale == Mini {
			cfg = models.ResNetMini()
		}
		hub := models.NewResNetHub(cfg)
		inst.NumClasses = 2
		inst.InputName = "img"
		depths := s.Depths
		if scale == Mini {
			depths = s.MiniDepths
		}
		for _, d := range depths {
			d := d
			variants = append(variants, variant{
				label: fmt.Sprintf("tune%d", d),
				build: func(name string, seed int64) (*graph.Model, error) {
					return hub.FineTuneModel(name, d, inst.NumClasses, seed)
				},
			})
		}
	default:
		return nil, fmt.Errorf("workloads: unknown approach %q", s.Approach)
	}

	var ms []*graph.Model
	idx := 0
	for _, v := range variants {
		for _, bs := range s.BatchSizes {
			for _, lr := range s.LRs {
				for _, ep := range s.Epochs {
					name := fmt.Sprintf("%s/%s-b%d-lr%g-e%d", s.Name, v.label, bs, lr, ep)
					m, err := v.build(name, int64(7000+31*idx))
					if err != nil {
						return nil, fmt.Errorf("workloads: build %s: %w", name, err)
					}
					prof, err := profile.Profile(m, hw)
					if err != nil {
						return nil, fmt.Errorf("workloads: profile %s: %w", name, err)
					}
					inst.Items = append(inst.Items, opt.WorkItem{
						Model: m, Prof: prof, Epochs: ep, BatchSize: bs, LR: lr * lrScale,
					})
					ms = append(ms, m)
					idx++
				}
			}
		}
	}
	mm, err := mmg.Build(ms...)
	if err != nil {
		return nil, err
	}
	inst.MM = mm
	return inst, nil
}

// NewPool creates the workload's dataset pool at the instance's scale. The
// pool sizes follow the paper (10,000 CoNLL-like records, 8,000
// Malaria-like records) at paper scale.
func (inst *Instance) NewPool(seed int64) *data.Pool {
	switch inst.Spec.Approach {
	case FineTuning:
		cfg := data.MalariaLike()
		if inst.Scale == Mini {
			cfg = data.ImageConfig{Records: 600, H: 16, W: 16, C: 3, Seed: seed}
		} else {
			cfg.Seed = seed
		}
		return data.SynthImages(cfg)
	default:
		cfg := data.ConNLLLike()
		if inst.Scale == Mini {
			cfg = data.NERConfig{Records: 600, Seq: 12, Vocab: 1024, Types: 4, Seed: seed}
		} else {
			cfg.Seed = seed
		}
		return data.SynthNER(cfg)
	}
}

// CycleSchedule returns (records per cycle, train split, cycles) for the
// instance: the paper's 10 × 500 (400/100) at paper scale, a proportional
// miniature otherwise.
func (inst *Instance) CycleSchedule() (perCycle, trainPerCycle, cycles int) {
	if inst.Scale == Paper {
		return 500, 400, 10
	}
	return 60, 48, 6
}
