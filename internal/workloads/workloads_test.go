package workloads

import (
	"testing"

	"nautilus/internal/profile"
)

func TestTable3ModelCounts(t *testing.T) {
	// The exact |Q| values of Table 3.
	want := map[string]int{"FTR-1": 36, "FTR-2": 24, "FTR-3": 12, "ATR": 24, "FTU": 24}
	for _, s := range All() {
		if got := s.NumModels(); got != want[s.Name] {
			t.Errorf("%s: %d models, want %d", s.Name, got, want[s.Name])
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("FTR-2"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestBuildMiniInstances(t *testing.T) {
	for _, s := range All() {
		inst, err := s.Build(Mini, profile.DefaultHardware())
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if len(inst.Items) != s.NumModels() {
			t.Errorf("%s: built %d items, want %d", s.Name, len(inst.Items), s.NumModels())
		}
		if inst.MM == nil || inst.MM.Graph.NumNodes() == 0 {
			t.Errorf("%s: missing multi-model graph", s.Name)
		}
		// Merging must save nodes: the shared trunk collapses.
		var perModel int
		for _, it := range inst.Items {
			perModel += it.Model.NumNodes()
		}
		if inst.MM.Graph.NumNodes() >= perModel {
			t.Errorf("%s: multi-model graph did not merge anything", s.Name)
		}
		// Every item carries a usable hyperparameter set.
		for _, it := range inst.Items {
			if it.Epochs <= 0 || it.BatchSize <= 0 || it.LR <= 0 {
				t.Errorf("%s: bad item %+v", s.Name, it)
			}
		}
	}
}

func TestBuildPaperScaleStructural(t *testing.T) {
	// Paper-scale builds must profile without materializing weights.
	for _, s := range []Spec{FTR3(), FTU()} {
		inst, err := s.Build(Paper, profile.DefaultHardware())
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		total, _ := inst.Items[0].Model.ParamCount()
		if total < 20_000_000 {
			t.Errorf("%s: paper-scale model has %d params", s.Name, total)
		}
		for _, p := range inst.Items[0].Model.AllParams() {
			if p.Materialized() {
				t.Fatalf("%s: paper-scale build materialized weights", s.Name)
			}
		}
	}
}

func TestUniqueModelNames(t *testing.T) {
	inst, err := FTR2().Build(Mini, profile.DefaultHardware())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, it := range inst.Items {
		if seen[it.Model.Name] {
			t.Errorf("duplicate model name %q", it.Model.Name)
		}
		seen[it.Model.Name] = true
	}
}

func TestDistinctHeadSeedsAcrossCandidates(t *testing.T) {
	inst, err := FTR3().Build(Mini, profile.DefaultHardware())
	if err != nil {
		t.Fatal(err)
	}
	// FTR-3 has one strategy: all 12 models share the frozen trunk but
	// have distinct trainable heads.
	sigA := inst.Items[0].Prof.Sigs[inst.Items[0].Model.Node("classifier")]
	sigB := inst.Items[1].Prof.Sigs[inst.Items[1].Model.Node("classifier")]
	if sigA == sigB {
		t.Error("candidate heads must differ")
	}
}

func TestNewPoolAndSchedule(t *testing.T) {
	for _, s := range []Spec{FTR3(), FTU()} {
		inst, err := s.Build(Mini, profile.DefaultHardware())
		if err != nil {
			t.Fatal(err)
		}
		pool := inst.NewPool(5)
		per, tr, cycles := inst.CycleSchedule()
		if pool.Size() < per*cycles {
			t.Errorf("%s: pool %d too small for %d cycles × %d", s.Name, pool.Size(), cycles, per)
		}
		if tr >= per {
			t.Errorf("%s: bad split %d/%d", s.Name, tr, per)
		}
		// Pool record shape matches the model input.
		inShape := inst.Items[0].Model.Inputs()[0].Layer.(interface{ OutShape([][]int) []int }).OutShape(nil)
		poolShape := pool.X.Shape()[1:]
		if len(inShape) != len(poolShape) {
			t.Fatalf("%s: pool shape %v vs input %v", s.Name, poolShape, inShape)
		}
		for i := range inShape {
			if inShape[i] != poolShape[i] {
				t.Errorf("%s: pool shape %v vs input %v", s.Name, poolShape, inShape)
			}
		}
	}
}

func TestPaperSchedule(t *testing.T) {
	inst, err := FTR3().Build(Paper, profile.DefaultHardware())
	if err != nil {
		t.Fatal(err)
	}
	per, tr, cycles := inst.CycleSchedule()
	if per != 500 || tr != 400 || cycles != 10 {
		t.Errorf("paper schedule = %d/%d/%d, want 500/400/10", per, tr, cycles)
	}
}
