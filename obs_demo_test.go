// End-to-end check of the observability surface: run the nautilus-run CLI
// with -trace and -metrics on a small workload and assert both artifacts
// parse and carry the promised guarantees (valid Chrome trace, zero
// compute/load deltas, metered peak under the B_mem estimate). `make
// trace-demo` runs the same flow interactively.
package nautilus_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// chromeTrace mirrors the trace-event envelope chrome://tracing loads.
type chromeTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// metricsDoc mirrors obs.MetricsReport's JSON shape.
type metricsDoc struct {
	Metrics struct {
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
	} `json:"metrics"`
	Conformance []struct {
		Group                    string `json:"group"`
		ComputeDelta             int64  `json:"compute_delta"`
		LoadDelta                int64  `json:"load_delta"`
		ActualComputeFLOPs       int64  `json:"actual_compute_flops"`
		PredictedPeakMemoryBytes int64  `json:"predicted_peak_memory_bytes"`
		ActualPeakMemoryBytes    int64  `json:"actual_peak_memory_bytes"`
	} `json:"conformance"`
	Spans []struct {
		Name  string `json:"name"`
		Count int64  `json:"count"`
	} `json:"spans"`
}

func TestTraceDemo(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real training via go run")
	}
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "demo.trace")
	metricsPath := filepath.Join(dir, "demo_metrics.json")
	cmd := exec.Command("go", "run", "./cmd/nautilus-run",
		"-workload", "FTR-3", "-cycles", "1",
		"-trace", tracePath, "-metrics", metricsPath)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("nautilus-run failed: %v\n%s", err, out)
	}

	// The trace must be a loadable Chrome trace-event file with complete
	// spans across planner, materializer, trainer, and store.
	traceBytes, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace chromeTrace
	if err := json.Unmarshal(traceBytes, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace holds no events")
	}
	names := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q has phase %q, want complete-span X", ev.Name, ev.Ph)
		}
		if ev.Dur < 0 || ev.Ts < 0 {
			t.Errorf("event %q has negative timing ts=%v dur=%v", ev.Name, ev.Ts, ev.Dur)
		}
		names[ev.Name] = true
	}
	for _, want := range []string{"plan/workload", "plan/mat_opt", "plan/fuse_opt",
		"mat/append_delta", "train/group", "train/epoch", "train/batch", "store/read", "core/fit"} {
		if !names[want] {
			t.Errorf("trace missing %s spans", want)
		}
	}

	// The metrics JSON must carry per-group conformance with exactly-zero
	// compute and load deltas and a metered peak under the planned bound.
	metricsBytes, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc metricsDoc
	if err := json.Unmarshal(metricsBytes, &doc); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	if len(doc.Conformance) == 0 {
		t.Fatal("metrics carry no conformance groups")
	}
	for _, g := range doc.Conformance {
		if g.ComputeDelta != 0 || g.LoadDelta != 0 {
			t.Errorf("group %s: nonzero deltas compute=%d load=%d", g.Group, g.ComputeDelta, g.LoadDelta)
		}
		if g.ActualComputeFLOPs == 0 {
			t.Errorf("group %s: no compute metered", g.Group)
		}
		if g.ActualPeakMemoryBytes <= 0 || g.ActualPeakMemoryBytes > g.PredictedPeakMemoryBytes {
			t.Errorf("group %s: metered peak %d outside (0, bound %d]",
				g.Group, g.ActualPeakMemoryBytes, g.PredictedPeakMemoryBytes)
		}
	}
	if len(doc.Metrics.Counters) == 0 || len(doc.Spans) == 0 {
		t.Error("metrics JSON missing registry counters or span stats")
	}
	if doc.Metrics.Gauges["exec.compute_flops"] == 0 {
		t.Error("exec.compute_flops gauge not mirrored into the registry")
	}
}
